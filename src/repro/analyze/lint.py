"""AST-based MPI-usage linter (the ``RPD3xx`` checks).

Operates on Python *source*, never importing or executing it, and is
deliberately conservative: every rule disarms itself as soon as the code
leaves the statically-analyzable subset (non-literal tags, requests stored
in containers, sends guarded by rank conditionals), so the shipped examples
and benchmarks lint clean while the classic textbook mistakes — mismatched
tags, forgotten waits, buffer reuse before completion, send/send deadlock —
are still caught.
"""

from __future__ import annotations

import ast
from typing import Optional, Union

from .diagnostics import Diagnostic

#: Method/function names treated as blocking sends, nonblocking sends,
#: blocking receives, and nonblocking receives.  The ``MPI_*`` spellings
#: cover the :mod:`repro.mpi.capi` shim.
SEND_NAMES = {"send", "ssend", "bsend", "Send", "MPI_Send", "MPI_Ssend"}
ISEND_NAMES = {"isend", "Isend", "MPI_Isend"}
RECV_NAMES = {"recv", "Recv", "MPI_Recv"}
IRECV_NAMES = {"irecv", "Irecv", "MPI_Irecv"}

#: Names that behave as a receive wildcard when used as a tag.
_WILDCARD_NAMES = {"ANY_TAG", "MPI_ANY_TAG"}

#: Sentinels for tag classification.
_WILDCARD = "any"
_UNKNOWN = "unknown"

#: List methods that stash a request into an aggregate rather than
#: completing it; the base-name load in ``reqs.append(...)`` is part of
#: the collection, not a read.
_AGG_MUTATORS = {"append", "extend", "insert"}


def _call_kind(call: ast.Call) -> tuple[Optional[str], bool]:
    """Classify a call as (kind, is_capi); kind None when not MPI traffic."""
    func = call.func
    if isinstance(func, ast.Attribute):
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    else:
        return None, False
    is_capi = name.startswith("MPI_")
    if name in SEND_NAMES:
        return "send", is_capi
    if name in ISEND_NAMES:
        return "isend", is_capi
    if name in RECV_NAMES:
        return "recv", is_capi
    if name in IRECV_NAMES:
        return "irecv", is_capi
    return None, False


def _tag_of(call: ast.Call, kind: str, is_capi: bool) -> Union[int, str]:
    """The tag a call matches on: an int literal, _WILDCARD, or _UNKNOWN.

    The capi shim passes tags at a different positional index, so capi
    calls are always _UNKNOWN (which disarms the tag rule for the file).
    """
    if is_capi:
        return _UNKNOWN
    for kw in call.keywords:
        if kw.arg is None:  # **kwargs could smuggle a tag
            return _UNKNOWN
        if kw.arg == "tag":
            v = kw.value
            if isinstance(v, ast.Constant) and isinstance(v.value, int):
                return v.value
            if isinstance(v, ast.Name) and v.id in _WILDCARD_NAMES:
                return _WILDCARD
            if (isinstance(v, ast.Attribute)
                    and v.attr in _WILDCARD_NAMES):
                return _WILDCARD
            return _UNKNOWN
    args = call.args
    if len(args) >= 3:
        v = args[2]
        if isinstance(v, ast.Constant) and isinstance(v.value, int):
            return v.value
        if isinstance(v, ast.Name) and v.id in _WILDCARD_NAMES:
            return _WILDCARD
        return _UNKNOWN
    # Defaulted: sends default to tag 0, receives to ANY_TAG.
    return 0 if kind in ("send", "isend") else _WILDCARD


def _comm_key(call: ast.Call, is_capi: bool) -> str:
    """Textual identity of the communicator a call operates on.

    Tags live in per-communicator spaces — a ``comm.dup()``/``comm.split()``
    child never matches traffic on its parent — so sends and receives are
    grouped by the expression the traffic goes through: the method-call
    base (``comm`` in ``comm.send(...)``, ``sub`` in ``sub.recv(...)``) or
    the first positional argument for the capi spellings.  Aliased
    communicators split into separate (conservatively unchecked one-sided)
    groups; that errs toward silence, never false positives.
    """
    if is_capi:
        expr = call.args[0] if call.args else None
    else:
        expr = call.func.value if isinstance(call.func, ast.Attribute) \
            else None
    if expr is None:
        return "<expr>"
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        parts = [expr.attr]
        base = expr.value
        while isinstance(base, ast.Attribute):
            parts.append(base.attr)
            base = base.value
        if isinstance(base, ast.Name):
            parts.append(base.id)
            return ".".join(reversed(parts))
    try:
        return ast.unparse(expr)
    except Exception:
        return "<expr>"


def _check_tags(tree: ast.Module, path: Optional[str]) -> list[Diagnostic]:
    """RPD301: send tags with no matching recv tag on the same communicator.

    Matching is per communicator key (see :func:`_comm_key`): a send on a
    duplicated communicator must find its receive on that communicator,
    and tags on different communicators never cross-satisfy each other.
    """
    groups: dict[str, tuple[list, list]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        kind, is_capi = _call_kind(node)
        if kind is None:
            continue
        tag = _tag_of(node, kind, is_capi)
        sends, recvs = groups.setdefault(_comm_key(node, is_capi),
                                         ([], []))
        (sends if kind in ("send", "isend") else recvs).append((tag, node))
    diags: list[Diagnostic] = []
    for key in sorted(groups):
        sends, recvs = groups[key]
        if not sends or not recvs:
            continue  # one-sided traffic (drivers, helpers) is out of scope
        send_tags = {t for t, _ in sends}
        recv_tags = {t for t, _ in recvs}
        if _UNKNOWN in send_tags | recv_tags:
            continue  # a dynamic tag disarms the rule for this communicator
        if _WILDCARD not in recv_tags:
            for tag, call in sends:
                if tag not in recv_tags:
                    diags.append(Diagnostic(
                        "RPD301",
                        f"send with tag={tag} has no recv accepting tag "
                        f"{tag} on communicator {key!r} (its recv tags: "
                        f"{sorted(t for t in recv_tags)})",
                        hint="align the tag constants, or recv with "
                             "tag=ANY_TAG",
                        file=path, line=call.lineno, col=call.col_offset))
        for tag, call in recvs:
            if tag != _WILDCARD and tag not in send_tags:
                diags.append(Diagnostic(
                    "RPD301",
                    f"recv with tag={tag} can never match: no send uses "
                    f"tag {tag} on communicator {key!r} (its send tags: "
                    f"{sorted(send_tags)})",
                    hint="align the tag constants on both sides",
                    file=path, line=call.lineno, col=call.col_offset))
    return diags


def _scopes(tree: ast.Module):
    """Yield (scope_node, body) for the module and every function."""
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


def _flatten(body, conditional: bool = False):
    """Yield (stmt, conditional) in document order, staying in this scope.

    Descends through loops and ``with`` (still unconditional control flow
    for a straight-line SPMD program) and through ``if``/``try`` with the
    conditional bit set; never descends into nested functions or classes.
    """
    for stmt in body:
        yield stmt, conditional
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            # Loop bodies may run zero times; that only matters for the
            # deadlock rule, which requires the send itself to be reached,
            # so treat them as conditional.
            yield from _flatten(stmt.body, True)
            yield from _flatten(stmt.orelse, True)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            yield from _flatten(stmt.body, conditional)
        elif isinstance(stmt, ast.If):
            yield from _flatten(stmt.body, True)
            yield from _flatten(stmt.orelse, True)
        elif isinstance(stmt, ast.Try):
            yield from _flatten(stmt.body, True)
            for h in stmt.handlers:
                yield from _flatten(h.body, True)
            yield from _flatten(stmt.orelse, True)
            yield from _flatten(stmt.finalbody, conditional)


def _stmt_calls(stmt: ast.stmt):
    """Calls belonging to this statement itself.

    Nested statements (branch/loop bodies) are pruned — :func:`_flatten`
    yields those separately with their own conditional flag, so walking
    into them here would mis-attribute guarded calls to the parent.
    """
    todo = [stmt]
    while todo:
        node = todo.pop()
        if isinstance(node, ast.stmt) and node is not stmt:
            continue
        if isinstance(node, ast.Call):
            yield node
        todo.extend(ast.iter_child_nodes(node))


def _has_nb_call(expr: ast.AST) -> bool:
    """True when an isend/irecv call appears anywhere under ``expr``."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            kind, _ = _call_kind(node)
            if kind in ("isend", "irecv"):
                return True
    return False


def _walk_scope(scope):
    """Walk a scope's AST without entering nested function/class bodies."""
    todo = list(ast.iter_child_nodes(scope))
    while todo:
        node = todo.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef, ast.Lambda)):
            todo.extend(ast.iter_child_nodes(node))


def _aggregate_uses(scope) -> tuple[dict, set]:
    """Request-aggregate collection sites and genuine reads in a scope.

    Returns ``(collected, read)``.  ``collected`` maps a plain name to the
    (line, col) where a nonblocking request first entered an aggregate
    bound to it: a list/tuple/comprehension literal, an
    ``append``/``extend``/``insert`` call, or ``+=``.  ``read`` holds every
    name loaded anywhere under the scope *except* as the base of one of
    those collecting calls — so passing the aggregate to
    waitall/waitany/waitsome, iterating it in a wait loop, indexing it, or
    returning it all count as completion-capable reads.
    """
    collected: dict[str, tuple[int, int]] = {}
    collecting_nodes: set[int] = set()
    for node in _walk_scope(scope):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and not isinstance(node.value, ast.Call) \
                and _has_nb_call(node.value):
            collected.setdefault(node.targets[0].id,
                                 (node.lineno, node.col_offset))
        elif isinstance(node, ast.AugAssign) \
                and isinstance(node.target, ast.Name) \
                and _has_nb_call(node.value):
            collected.setdefault(node.target.id,
                                 (node.lineno, node.col_offset))
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _AGG_MUTATORS \
                and isinstance(node.func.value, ast.Name):
            collecting_nodes.add(id(node.func.value))
            if any(_has_nb_call(a) for a in node.args):
                collected.setdefault(node.func.value.id,
                                     (node.lineno, node.col_offset))
    read = {n.id for n in ast.walk(scope)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
            and id(n) not in collecting_nodes}
    return collected, read


def _loads_in(node: ast.AST) -> set:
    """Names read anywhere under ``node`` (including nested functions)."""
    return {n.id for n in ast.walk(node)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)}


def _mutated_names(stmt: ast.stmt) -> set:
    """Names whose binding or contents this statement writes."""
    out = set()
    targets = []
    if isinstance(stmt, ast.Assign):
        targets = stmt.targets
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    for t in targets:
        if isinstance(t, ast.Name):
            out.add(t.id)
        elif isinstance(t, (ast.Subscript, ast.Attribute)):
            base = t.value
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name):
                out.add(base.id)
        elif isinstance(t, (ast.Tuple, ast.List)):
            out.update(e.id for e in t.elts if isinstance(e, ast.Name))
    return out


def _check_scope(scope, body, path: Optional[str]) -> list[Diagnostic]:
    """RPD302/RPD303/RPD304 for one function or the module body."""
    diags: list[Diagnostic] = []
    stmts = list(_flatten(body))

    # -- RPD302: nonblocking request never waited ------------------------
    # Flag (a) a bare-expression isend/irecv (the request is discarded on
    # the spot); (b) a request assigned to a plain name that is never
    # read again in the scope; and (c) requests collected into an
    # aggregate (list literal, comprehension, append/extend, ``+=``)
    # whose name is never read outside those collecting calls.  Aggregate
    # completion — waitall(reqs), waitany/waitsome loops, ``for r in
    # reqs: r.wait()`` — reads the name and so passes.
    scope_loads = _loads_in(scope)
    for stmt, _cond in stmts:
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            kind, _ = _call_kind(stmt.value)
            if kind in ("isend", "irecv"):
                diags.append(Diagnostic(
                    "RPD302",
                    f"{kind} result is discarded; the request can never be "
                    f"waited on and the operation may never complete",
                    hint="assign the request and wait() on it",
                    file=path, line=stmt.lineno, col=stmt.col_offset))
        elif (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)):
            kind, _ = _call_kind(stmt.value)
            if kind in ("isend", "irecv") \
                    and stmt.targets[0].id not in scope_loads:
                diags.append(Diagnostic(
                    "RPD302",
                    f"request {stmt.targets[0].id!r} from {kind} is never "
                    f"waited on (name is never read again)",
                    hint=f"call {stmt.targets[0].id}.wait() before the "
                         f"buffer is reused",
                    file=path, line=stmt.lineno, col=stmt.col_offset))
    collected, agg_reads = _aggregate_uses(scope)
    for name in sorted(collected):
        if name not in agg_reads:
            line, col = collected[name]
            diags.append(Diagnostic(
                "RPD302",
                f"requests collected in {name!r} are never completed "
                f"(the aggregate is never read again)",
                hint=f"pass {name} to waitall(), or wait() on each request",
                file=path, line=line, col=col))

    # -- RPD303: buffer mutated between post and wait --------------------
    # Track `req = comm.isend(buf, ...)` where both are plain names; any
    # later statement that reads `req` releases the watch, an unconditional
    # mutation of `buf` before that is flagged.
    active: dict[str, tuple[str, int]] = {}  # req -> (buf, post line)
    for stmt, cond in stmts:
        mutated = _mutated_names(stmt)
        for req, (bufname, post_line) in list(active.items()):
            if not cond and bufname in mutated:
                diags.append(Diagnostic(
                    "RPD303",
                    f"buffer {bufname!r} is modified while request {req!r} "
                    f"posted at line {post_line} is still in flight",
                    hint=f"call {req}.wait() before touching {bufname!r}",
                    file=path, line=stmt.lineno, col=stmt.col_offset))
                del active[req]
        loads = _loads_in(stmt)
        for req in list(active):
            if req in loads:
                del active[req]  # waited, tested, or handed off
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)):
            kind, _ = _call_kind(stmt.value)
            if kind in ("isend", "irecv") and stmt.value.args \
                    and isinstance(stmt.value.args[0], ast.Name):
                active[stmt.targets[0].id] = (stmt.value.args[0].id,
                                              stmt.lineno)

    # -- RPD304: unconditional blocking send before blocking recv --------
    # In an SPMD program a blocking send every rank executes before any
    # rank reaches a recv is the classic head-to-head deadlock (real MPI
    # only survives it while the message fits the eager limit).  Guarded
    # sends (rank conditionals, loops) disarm the rule.
    first_send = None
    for stmt, cond in stmts:
        if cond:
            continue
        for call in _stmt_calls(stmt):
            kind, _ = _call_kind(call)
            if kind == "send" and first_send is None:
                first_send = call
            elif kind == "recv" and first_send is not None:
                diags.append(Diagnostic(
                    "RPD304",
                    f"every rank blocks in send at line {first_send.lineno} "
                    f"before any rank reaches this recv; ranks deadlock "
                    f"once the message exceeds the eager limit",
                    hint="post the recv first (irecv), use sendrecv, or "
                         "order by rank parity",
                    file=path, line=call.lineno, col=call.col_offset))
                return diags  # one report per scope is enough
    return diags


def lint_source(source: str, path: Optional[str] = None) -> list[Diagnostic]:
    """Lint Python source text; returns diagnostics (RPD300 on bad syntax)."""
    try:
        tree = ast.parse(source, filename=path or "<string>")
    except SyntaxError as exc:
        return [Diagnostic("RPD300",
                           f"could not parse: {exc.msg}",
                           file=path, line=exc.lineno or 0,
                           col=(exc.offset or 1) - 1)]
    diags = _check_tags(tree, path)
    for scope, body in _scopes(tree):
        diags.extend(_check_scope(scope, body, path))
    return diags


def lint_file(path: str) -> list[Diagnostic]:
    """Lint one file on disk."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
    except (OSError, UnicodeDecodeError) as exc:
        return [Diagnostic("RPD300", f"could not read: {exc}", file=path)]
    return lint_source(source, path)
