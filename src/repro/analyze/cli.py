"""Command-line front end: ``python -m repro.analyze`` / ``repro-analyze``.

Lints every ``.py`` file under the given paths; with ``--import`` it also
imports each file and analyzes the module-level datatypes it defines (plus
any ``ANALYZE_CONTRACT_CASES`` harness cases).  Exit status is 1 iff
findings were reported, 2 on usage errors, 0 otherwise.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import sys
from typing import Optional

from .contracts import verify_callbacks
from .diagnostics import (CODE_TABLE, STRICT_ONLY_SEVERITIES, Diagnostic,
                          sort_diagnostics)
from .lint import lint_file
from .suppress import apply_suppressions
from .typecheck import analyze_datatype

#: JSON schema version; bump only on incompatible output changes.
SCHEMA_VERSION = 1


def _iter_py_files(paths):
    """Expand files/directories into a sorted, deduplicated .py file list."""
    seen = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames
                                     if d != "__pycache__"
                                     and not d.startswith("."))
                for fn in sorted(filenames):
                    if fn.endswith(".py"):
                        seen.append(os.path.join(dirpath, fn))
        elif os.path.isfile(path):
            seen.append(path)
        else:
            raise FileNotFoundError(path)
    out = []
    for p in seen:
        if p not in out:
            out.append(p)
    return out


def _import_module(path: str):
    """Import one file under a throwaway module name.

    Returns ``(module, None)`` or ``(None, RPD300 Diagnostic)`` on failure.
    """
    modname = "_repro_analyze_" + os.path.basename(path)[:-3].replace(
        "-", "_") + f"_{abs(hash(os.path.abspath(path))) % 10 ** 8}"
    try:
        spec = importlib.util.spec_from_file_location(modname, path)
        mod = importlib.util.module_from_spec(spec)
        sys.modules[modname] = mod
        spec.loader.exec_module(mod)
        return mod, None
    except Exception as exc:
        return None, Diagnostic(
            "RPD300", f"import failed: {type(exc).__name__}: {exc}",
            file=path)
    finally:
        sys.modules.pop(modname, None)


def _module_datatypes(mod) -> list[tuple[str, object]]:
    """Module-level non-underscore ``Datatype`` bindings, deduplicated."""
    from ..core.datatype import Datatype

    out: list[tuple[str, object]] = []
    seen: set[int] = set()
    for name, value in sorted(vars(mod).items()):
        if name.startswith("_") or not isinstance(value, Datatype):
            continue
        if id(value) in seen:
            continue
        seen.add(id(value))
        out.append((name, value))
    return out


def _import_and_analyze(path: str) -> list[Diagnostic]:
    """Import one file and analyze the datatypes it defines at module level.

    Conventions: every module-level ``Datatype`` binding not starting with
    ``_`` is checked statically; a module-level ``ANALYZE_CONTRACT_CASES``
    list of dicts (``dtype``, ``send_buf``, optional ``recv_buf``/``count``/
    ``frag_size``) additionally runs the symbolic contract harness.
    """
    mod, err = _import_module(path)
    if err is not None:
        return [err]

    diags: list[Diagnostic] = []
    for name, value in _module_datatypes(mod):
        diags.extend(analyze_datatype(value, path=path))
    for case in getattr(mod, "ANALYZE_CONTRACT_CASES", []):
        try:
            diags.extend(verify_callbacks(
                case["dtype"], case.get("send_buf"),
                recv_buf=case.get("recv_buf"),
                count=case.get("count", 1),
                frag_size=case.get("frag_size", 64), path=path))
        except Exception as exc:
            diags.append(Diagnostic(
                "RPD300",
                f"contract case {case.get('dtype')!r} could not run: "
                f"{type(exc).__name__}: {exc}", file=path))
    return diags


def _matches(code: str, patterns) -> bool:
    return any(code.startswith(p) for p in patterns)


def _invalid_code_patterns(ns) -> list[str]:
    """``--select``/``--ignore`` tokens that match no known RPD code.

    A token is valid iff it is a prefix of at least one registered code —
    full codes (``RPD610``) and family prefixes (``RPD6``, ``RPD61``) both
    work; typos like ``RPD16`` or ``RDP101`` are rejected so a filter can
    never silently match nothing.
    """
    bad = []
    for spec in (ns.select, ns.ignore):
        for token in spec.split(","):
            if not token:
                continue
            if not any(code.startswith(token) for code in CODE_TABLE):
                bad.append(token)
    return bad


def _reject_unknown_codes(ns) -> bool:
    """Report invalid filter tokens; True when the run must abort."""
    bad = _invalid_code_patterns(ns)
    if bad:
        print("error: unknown diagnostic code or prefix: "
              + ", ".join(sorted(set(bad)))
              + " (run 'repro-analyze --list-codes' for the table)",
              file=sys.stderr)
    return bool(bad)


def _render_json(findings, nfiles: int, tool: str = "repro.analyze") -> str:
    by_code: dict[str, int] = {}
    by_severity: dict[str, int] = {}
    for d in findings:
        by_code[d.code] = by_code.get(d.code, 0) + 1
        by_severity[d.severity] = by_severity.get(d.severity, 0) + 1
    doc = {
        "version": SCHEMA_VERSION,
        "tool": tool,
        "findings": [d.to_dict() for d in findings],
        "summary": {
            "files": nfiles,
            "findings": len(findings),
            "by_code": dict(sorted(by_code.items())),
            "by_severity": dict(sorted(by_severity.items())),
        },
    }
    return json.dumps(doc, indent=2)


def _write_report(path: str, doc: dict) -> None:
    """Write one machine-readable report; identical shape across
    subcommands (``version`` + ``tool`` keys, then tool-specific
    sections)."""
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


def _findings_report_doc(findings, nfiles: int, tool: str) -> dict:
    """The common findings/summary report document of a subcommand."""
    return json.loads(_render_json(findings, nfiles, tool=tool))


def _gh_escape(text: str, *, prop: bool = False) -> str:
    """GitHub Actions workflow-command escaping."""
    text = text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    if prop:
        text = text.replace(":", "%3A").replace(",", "%2C")
    return text


_GH_LEVELS = {"error": "error", "warning": "warning",
              "perf": "notice", "notice": "notice"}


def _render_github(findings) -> str:
    """One ``::error file=…,line=…,col=…`` annotation per finding."""
    lines = []
    for d in findings:
        level = _GH_LEVELS.get(d.severity, "notice")
        props = []
        if d.file:
            props.append(f"file={_gh_escape(d.file, prop=True)}")
        if d.line:
            props.append(f"line={d.line}")
            props.append(f"col={d.col + 1}")   # annotations are 1-based
        props.append(f"title={d.code}")
        message = d.message + (f" [{d.subject}]" if d.subject else "")
        lines.append(f"::{level} {','.join(props)}::{_gh_escape(message)}")
    return "\n".join(lines)


def _emit(findings, nfiles: int, fmt: str) -> None:
    if fmt == "json":
        print(_render_json(findings, nfiles))
    elif fmt == "github":
        out = _render_github(findings)
        if out:
            print(out)
        print(f"{len(findings)} finding(s) in {nfiles} file(s)"
              if findings else f"clean: {nfiles} file(s), no findings")
    else:
        for d in findings:
            print(d.format_text())
        print(f"{len(findings)} finding(s) in {nfiles} file(s)"
              if findings else f"clean: {nfiles} file(s), no findings")


def _parse_nprocs(spec: str):
    out = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        n = int(part)
        if n < 2:
            raise ValueError(f"nprocs must be >= 2, got {n}")
        out.append(n)
    if not out:
        raise ValueError("empty --nprocs list")
    return out


def _list_codes() -> str:
    lines = [f"{'code':8s} {'severity':8s} {'mpi error':16s} description"]
    for info in CODE_TABLE.values():
        lines.append(f"{info.code:8s} {info.severity:8s} "
                     f"{info.mpi_error_name:16s} {info.title}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser (exposed for the docs and tests)."""
    p = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Static analysis for repro MPI programs and datatypes.")
    p.add_argument("paths", nargs="*",
                   help="files or directories to analyze")
    p.add_argument("--format", choices=("text", "json", "github"),
                   default="text",
                   help="output format (default: text); 'github' emits "
                        "GitHub Actions workflow annotations")
    p.add_argument("--strict", action="store_true",
                   help="also report perf- and notice-severity findings")
    p.add_argument("--no-flow", action="store_true",
                   help="skip the communication-flow verifier on files "
                        "that define main(comm)")
    p.add_argument("--select", default="",
                   help="comma-separated code prefixes to keep "
                        "(e.g. RPD3,RPD101)")
    p.add_argument("--ignore", default="",
                   help="comma-separated code prefixes to drop")
    p.add_argument("--import", dest="do_import", action="store_true",
                   help="import each file and analyze module-level "
                        "datatypes (executes the files!)")
    p.add_argument("--report", metavar="FILE", default="",
                   help="write the findings and summary to FILE as JSON "
                        "(independent of --format)")
    p.add_argument("--list-codes", action="store_true",
                   help="print the diagnostic code table and exit")
    return p


def main(argv: Optional[list] = None) -> int:
    """Entry point; returns the process exit status."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "sanitize":
        # Subcommand dispatch: the dynamic sanitizer shares this CLI so the
        # static pass and the runtime verifier form one tool.
        from ..sanitize.cli import main as sanitize_main
        return sanitize_main(argv[1:])
    if argv and argv[0] == "flow":
        return flow_main(argv[1:])
    if argv and argv[0] == "plans":
        return plans_main(argv[1:])
    if argv and argv[0] == "proto":
        return proto_main(argv[1:])
    if argv and argv[0] == "races":
        return races_main(argv[1:])
    parser = build_parser()
    try:
        ns = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0) and 2

    if _reject_unknown_codes(ns):
        return 2
    if ns.list_codes:
        print(_list_codes())
        return 0
    if not ns.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (or use --list-codes)", file=sys.stderr)
        return 2

    try:
        files = _iter_py_files(ns.paths)
    except FileNotFoundError as exc:
        print(f"error: no such file or directory: {exc}", file=sys.stderr)
        return 2

    findings: list[Diagnostic] = []
    for path in files:
        per_file = lint_file(path)
        if not ns.no_flow:
            from .flow import analyze_flow_file
            report = analyze_flow_file(path)
            if report.has_main:
                if report.complete:
                    # The rank- and tag-aware static matching supersedes
                    # the per-file tag heuristic.
                    per_file = [d for d in per_file if d.code != "RPD301"]
                per_file.extend(report.findings)
        if ns.do_import:
            per_file.extend(_import_and_analyze(path))
        kept, notices = apply_suppressions(per_file, path)
        findings.extend(kept)
        findings.extend(notices)

    findings = _filter_findings(findings, ns)
    if ns.report:
        _write_report(ns.report,
                      _findings_report_doc(findings, len(files),
                                           "repro.analyze"))
    _emit(findings, len(files), ns.format)
    return 1 if findings else 0


def _filter_findings(findings, ns) -> list[Diagnostic]:
    """Shared severity/select/ignore post-processing."""
    if not ns.strict:
        findings = [d for d in findings
                    if d.severity not in STRICT_ONLY_SEVERITIES]
    select = [s for s in ns.select.split(",") if s]
    ignore = [s for s in ns.ignore.split(",") if s]
    if select:
        findings = [d for d in findings if _matches(d.code, select)]
    if ignore:
        findings = [d for d in findings if not _matches(d.code, ignore)]
    return sort_diagnostics(findings)


def build_flow_parser() -> argparse.ArgumentParser:
    """Parser of the ``repro-analyze flow`` subcommand."""
    p = argparse.ArgumentParser(
        prog="repro-analyze flow",
        description="Static communication-flow verification of main(comm) "
                    "programs (RPD5xx).")
    p.add_argument("paths", nargs="*",
                   help="files or directories to verify")
    p.add_argument("--nprocs", default="",
                   help="comma-separated job sizes to evaluate (default: "
                        "the size the file pins, else 2,3,4 plus symbolic-"
                        "N witnesses)")
    p.add_argument("--format", choices=("text", "json", "github"),
                   default="text", help="output format (default: text)")
    p.add_argument("--strict", action="store_true",
                   help="also report notice-severity findings "
                        "(RPD530 incomplete analysis, RPD590 unused noqa)")
    p.add_argument("--select", default="",
                   help="comma-separated code prefixes to keep")
    p.add_argument("--ignore", default="",
                   help="comma-separated code prefixes to drop")
    p.add_argument("--report", metavar="FILE", default="",
                   help="write the findings and summary to FILE as JSON "
                        "(independent of --format)")
    return p


def flow_main(argv: Optional[list] = None) -> int:
    """Entry point of ``repro-analyze flow``."""
    from .flow import analyze_flow_file

    parser = build_flow_parser()
    try:
        ns = parser.parse_args(argv if argv is not None else sys.argv[1:])
    except SystemExit as exc:
        return int(exc.code or 0) and 2
    if _reject_unknown_codes(ns):
        return 2
    if not ns.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return 2
    nprocs = None
    if ns.nprocs:
        try:
            nprocs = _parse_nprocs(ns.nprocs)
        except ValueError as exc:
            print(f"error: invalid --nprocs: {exc}", file=sys.stderr)
            return 2
    try:
        files = _iter_py_files(ns.paths)
    except FileNotFoundError as exc:
        print(f"error: no such file or directory: {exc}", file=sys.stderr)
        return 2

    findings: list[Diagnostic] = []
    analyzed = 0
    for path in files:
        report = analyze_flow_file(path, nprocs=nprocs)
        if not report.has_main:
            continue
        analyzed += 1
        kept, notices = apply_suppressions(report.findings, path)
        findings.extend(kept)
        findings.extend(notices)

    findings = _filter_findings(findings, ns)
    if ns.report:
        _write_report(ns.report,
                      _findings_report_doc(findings, analyzed,
                                           "repro.analyze.flow"))
    _emit(findings, analyzed, ns.format)
    return 1 if findings else 0


def build_plans_parser() -> argparse.ArgumentParser:
    """Parser of the ``repro-analyze plans`` subcommand."""
    p = argparse.ArgumentParser(
        prog="repro-analyze plans",
        description="Pack-plan IR verification (RPD6xx): translation-"
                    "validates every rewrite pass, checks IR well-"
                    "formedness, and runs the static cost model.  Files "
                    "are imported (executed!) and their module-level "
                    "datatypes verified.")
    p.add_argument("paths", nargs="*",
                   help="Python files or directories whose module-level "
                        "datatypes to verify")
    p.add_argument("--ddtbench", action="store_true",
                   help="also verify every registered DDTBench workload "
                        "datatype")
    p.add_argument("--executor", choices=("auto", "slices", "gather"),
                   default="auto",
                   help="executor backend to compile for (default: auto)")
    p.add_argument("--miscompile-corpus", action="store_true",
                   help="run the seeded miscompile corpus instead of a "
                        "clean verification (findings are EXPECTED; exits "
                        "2 if any seeded bug goes undetected)")
    p.add_argument("--report", metavar="FILE", default="",
                   help="write the pass-pipeline report (one JSON entry "
                        "per verified compilation) to FILE")
    p.add_argument("--format", choices=("text", "json", "github"),
                   default="text", help="output format (default: text)")
    p.add_argument("--strict", action="store_true",
                   help="also report perf-severity findings (RPD620 "
                        "cost-model smells)")
    p.add_argument("--select", default="",
                   help="comma-separated code prefixes to keep")
    p.add_argument("--ignore", default="",
                   help="comma-separated code prefixes to drop")
    return p


def plans_main(argv: Optional[list] = None) -> int:
    """Entry point of ``repro-analyze plans``."""
    from .planverify import (ddtbench_corpus, verify_datatype,
                             verify_miscompile_corpus)

    parser = build_plans_parser()
    try:
        ns = parser.parse_args(argv if argv is not None else sys.argv[1:])
    except SystemExit as exc:
        return int(exc.code or 0) and 2
    if _reject_unknown_codes(ns):
        return 2

    if ns.miscompile_corpus:
        findings, missed = verify_miscompile_corpus()
        for m in missed:
            print(f"error: seeded miscompile NOT detected: {m}",
                  file=sys.stderr)
        findings = _filter_findings(findings, ns)
        _emit(findings, 0, ns.format)
        if missed:
            return 2
        return 1 if findings else 0

    if not ns.paths and not ns.ddtbench:
        parser.print_usage(sys.stderr)
        print("error: no paths given (or use --ddtbench / "
              "--miscompile-corpus)", file=sys.stderr)
        return 2

    # Collect (subject, datatype, attributed file) from every source.
    findings: list[Diagnostic] = []
    subjects = []
    if ns.ddtbench:
        for name, dt in ddtbench_corpus():
            subjects.append((name, dt, None))
    if ns.paths:
        try:
            files = _iter_py_files(ns.paths)
        except FileNotFoundError as exc:
            print(f"error: no such file or directory: {exc}",
                  file=sys.stderr)
            return 2
        for path in files:
            mod, err = _import_module(path)
            if err is not None:
                findings.append(err)
                continue
            for name, dt in _module_datatypes(mod):
                subjects.append((name, dt, path))

    reports = []
    for name, dt, path in subjects:
        for rep in verify_datatype(dt, executor=ns.executor, path=path,
                                   subject=name):
            reports.append(rep)
            findings.extend(rep.diagnostics)

    if ns.report:
        _write_report(ns.report, {
            "version": SCHEMA_VERSION,
            "tool": "repro.analyze.plans",
            "executor": ns.executor,
            "reports": [r.to_dict() for r in reports],
            "verified": sum(1 for r in reports if r.verified),
            "total": len(reports),
        })

    findings = _filter_findings(findings, ns)
    _emit(findings, len(subjects), ns.format)
    return 1 if findings else 0


def build_proto_parser() -> argparse.ArgumentParser:
    """Parser of the ``repro-analyze proto`` subcommand."""
    p = argparse.ArgumentParser(
        prog="repro-analyze proto",
        description="Protocol verification (RPD7xx): bounded model "
                    "checking of the wire protocol's state machine over "
                    "all action interleavings, plus (--conformance) a "
                    "live-transport conformance sweep against the model's "
                    "predictions.")
    p.add_argument("--ranks", type=int, default=3,
                   help="ranks in the model-checked scenarios, 2-4 "
                        "(default: 3)")
    p.add_argument("--depth", type=int, default=60,
                   help="interleaving depth bound (default: 60)")
    p.add_argument("--max-states", type=int, default=200_000,
                   help="per-scenario state-count safety valve "
                        "(default: 200000)")
    p.add_argument("--faults", default="",
                   help="comma-separated fault actions to model "
                        "(drop,corrupt,duplicate,reorder,crash; "
                        "default: all)")
    p.add_argument("--no-por", action="store_true",
                   help="disable the partial-order reduction (explores "
                        "the full interleaving set; for debugging)")
    p.add_argument("--conformance", action="store_true",
                   help="also run model traces against the live "
                        "transport (RPD720 on divergence)")
    p.add_argument("--transport", default=None,
                   help="backend the conformance cases run on "
                        "(inproc/shm/asyncio; default: $REPRO_TRANSPORT, "
                        "else inproc).  The model's predictions are "
                        "backend-independent, so a divergence on one "
                        "backend only is a transport bug")
    p.add_argument("--mutants", action="store_true",
                   help="run the seeded protocol-mutant corpus instead "
                        "of a clean verification (findings are EXPECTED; "
                        "exits 2 if any mutant escapes its designated "
                        "RPD code)")
    p.add_argument("--report", metavar="FILE", default="",
                   help="write the exploration report (states, "
                        "transitions, wall time, states/s per scenario) "
                        "to FILE as JSON")
    p.add_argument("--format", choices=("text", "json", "github"),
                   default="text", help="output format (default: text)")
    p.add_argument("--strict", action="store_true",
                   help="also report perf- and notice-severity findings")
    p.add_argument("--select", default="",
                   help="comma-separated code prefixes to keep")
    p.add_argument("--ignore", default="",
                   help="comma-separated code prefixes to drop")
    return p


_FAULT_KINDS = ("drop", "corrupt", "duplicate", "reorder", "crash")


def proto_main(argv: Optional[list] = None) -> int:
    """Entry point of ``repro-analyze proto``."""
    from .protomodel import run_mutant_corpus, verify_shipped

    parser = build_proto_parser()
    try:
        ns = parser.parse_args(argv if argv is not None else sys.argv[1:])
    except SystemExit as exc:
        return int(exc.code or 0) and 2
    if _reject_unknown_codes(ns):
        return 2
    if not 2 <= ns.ranks <= 4:
        print("error: --ranks must be 2, 3 or 4", file=sys.stderr)
        return 2
    fault_kinds = None
    if ns.faults:
        kinds = [k for k in ns.faults.split(",") if k]
        bad = [k for k in kinds if k not in _FAULT_KINDS]
        if bad:
            print("error: unknown fault action(s): " + ", ".join(bad)
                  + " (choose from " + ",".join(_FAULT_KINDS) + ")",
                  file=sys.stderr)
            return 2
        fault_kinds = frozenset(kinds)

    report_doc = {"version": SCHEMA_VERSION, "tool": "repro.analyze.proto",
                  "ranks": ns.ranks, "depth": ns.depth}

    if ns.mutants:
        findings, missed, model_report = run_mutant_corpus(
            nranks=ns.ranks, depth=ns.depth, max_states=ns.max_states)
        for m in missed:
            print(f"error: protocol mutant NOT detected: {m}",
                  file=sys.stderr)
        report_doc["model"] = model_report.to_dict()
        report_doc["mutants_missed"] = missed
        findings = _filter_findings(findings, ns)
        _emit(findings, len(model_report.results), ns.format)
        if ns.report:
            _write_report(ns.report, report_doc)
        if missed:
            return 2
        return 1 if findings else 0

    findings: list[Diagnostic] = []
    model_report = verify_shipped(nranks=ns.ranks, depth=ns.depth,
                                  fault_kinds=fault_kinds,
                                  max_states=ns.max_states,
                                  por=not ns.no_por)
    findings.extend(model_report.diagnostics)
    report_doc["model"] = model_report.to_dict()
    nscen = len(model_report.results)

    if ns.conformance:
        from ..ucp.transport import TransportUnavailableError
        from .protoconform import run_conformance
        try:
            conf = run_conformance(transport=ns.transport)
        except TransportUnavailableError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        findings.extend(conf.diagnostics)
        report_doc["conformance"] = conf.to_dict()
        nscen += len(conf.cases)

    if ns.report:
        _write_report(ns.report, report_doc)

    findings = _filter_findings(findings, ns)
    _emit(findings, nscen, ns.format)
    return 1 if findings else 0


def build_races_parser() -> argparse.ArgumentParser:
    """Parser of the ``repro-analyze races`` subcommand."""
    p = argparse.ArgumentParser(
        prog="repro-analyze races",
        description="Static concurrency and transport-portability audit "
                    "(RPD8xx): per-attribute lockset inference and GIL-"
                    "atomicity checks over the fabric classes, a lock-"
                    "order graph with inversion detection, and a wire-"
                    "envelope audit of what a process-boundary transport "
                    "must copy versus map.")
    p.add_argument("paths", nargs="*",
                   help="files or directories to audit (default: the "
                        "shipped fabric — repro/ucp, repro/mpi and the "
                        "type caches)")
    p.add_argument("--corpus", action="store_true",
                   help="run the seeded race corpus instead of a clean "
                        "audit (findings are EXPECTED; exits 2 if any "
                        "seeded race escapes its designated RPD code)")
    p.add_argument("--witness", action="store_true",
                   help="also run the dynamic lockset witness — a canned "
                        "multi-rank job under instrumented locks — and "
                        "report runtime-confirmed races alongside the "
                        "static findings")
    p.add_argument("--report", metavar="FILE", default="",
                   help="write the findings, the audit inventory (lock-"
                        "order edges, wire fields, assumptions) and any "
                        "witness observations to FILE as JSON")
    p.add_argument("--format", choices=("text", "json", "github"),
                   default="text", help="output format (default: text)")
    p.add_argument("--strict", action="store_true",
                   help="also report notice-severity findings "
                        "(RPD590 unused noqa)")
    p.add_argument("--select", default="",
                   help="comma-separated code prefixes to keep")
    p.add_argument("--ignore", default="",
                   help="comma-separated code prefixes to drop")
    return p


def races_main(argv: Optional[list] = None) -> int:
    """Entry point of ``repro-analyze races``."""
    from .races import analyze_paths, run_corpus, shipped_audit_paths

    parser = build_races_parser()
    try:
        ns = parser.parse_args(argv if argv is not None else sys.argv[1:])
    except SystemExit as exc:
        return int(exc.code or 0) and 2
    if _reject_unknown_codes(ns):
        return 2

    if ns.corpus:
        findings, missed, nfiles = run_corpus()
        for m in missed:
            print(f"error: seeded race NOT detected: {m}", file=sys.stderr)
        findings = _filter_findings(findings, ns)
        if ns.report:
            doc = _findings_report_doc(findings, nfiles,
                                       "repro.analyze.races")
            doc["corpus_missed"] = missed
            _write_report(ns.report, doc)
        _emit(findings, nfiles, ns.format)
        if missed:
            return 2
        return 1 if findings else 0

    try:
        findings, nfiles, audit = analyze_paths(
            ns.paths or shipped_audit_paths())
    except FileNotFoundError as exc:
        print(f"error: no such file or directory: {exc}", file=sys.stderr)
        return 2

    witness_doc = None
    if ns.witness:
        from ..sanitize.witness import run_shipped_witness
        wit = run_shipped_witness()
        witness_doc = wit.to_dict()
        for conf in wit.confirmed:
            findings.append(Diagnostic(
                "RPD800",
                f"dynamic lockset witness observed {conf.writes} "
                f"unsynchronized write(s) to {conf.cls}.{conf.attr} from "
                f"{conf.threads} thread(s) with no common lock held",
                subject=f"{conf.cls}.{conf.attr}",
                hint="the static audit missed this attribute or its lock "
                     "was bypassed at runtime; guard every write"))

    findings = _filter_findings(findings, ns)
    if ns.report:
        doc = _findings_report_doc(findings, nfiles, "repro.analyze.races")
        doc["audit"] = audit.to_dict()
        if witness_doc is not None:
            doc["witness"] = witness_doc
        _write_report(ns.report, doc)
    _emit(findings, nfiles, ns.format)
    return 1 if findings else 0
