"""Static verifier for pack-plan IR: RPD6xx.

The pass pipeline of :mod:`repro.core.planir` rewrites the IR a
:class:`~repro.core.packplan.PackPlan` executes.  A miscompile there would
corrupt every message silently — the packed bytes would simply be wrong —
so this module proves each compilation rather than trusting it:

* **Well-formedness** (RPD600/601/602): the byte-level write set of a
  program must hit every wire offset exactly once (RPD600), read only
  source bytes inside the typemap's true bounds (RPD601), and write the
  wire monotonically in execution order (RPD602 — the property streaming
  consumers such as :class:`~repro.core.packplan.UnpackCursor` rely on).
* **Translation validation** (RPD610): for every rewrite pass, the
  ``wire offset -> source offset`` byte map (:func:`repro.core.planir.
  byte_map`) of the pass output is proven equal to that of its input.  Any
  divergence names the offending pass and the first diverging wire byte.
* **Static cost model** (RPD620): a LogGP-style throughput prediction over
  the final IR from the :mod:`repro.ucp.netsim` parameters, flagging
  layouts whose canonical form is still pathological (call-heavy leaf
  loops, gathers over coalescable runs, degenerate loop nests).

The verifier is wired into ``repro-analyze plans`` (see
:mod:`repro.analyze.cli`) and runs in CI over the full DDTBench corpus; a
seeded miscompile corpus (:data:`MISCOMPILE_CORPUS`) of deliberately buggy
passes proves the validator actually rejects bad rewrites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

import numpy as np

from ..core import planir
from ..core.planir import (CopyBlock, Gather, Pass, Program, StridedLoop,
                           byte_map, default_pipeline, enumerate_bytes,
                           leaf_calls, lower_typemap, moved_bytes, op_count)
from ..core.typemap import Typemap
from ..ucp.netsim import DEFAULT_PARAMS, LinkParams
from .diagnostics import Diagnostic

__all__ = [
    "check_wellformed", "validate_pipeline", "predict_pack_time",
    "cost_findings", "verify_typemap", "verify_datatype",
    "ddtbench_corpus", "MiscompileFixture", "MISCOMPILE_CORPUS",
    "verify_miscompile_corpus", "PlanReport",
]

#: Mean contiguous-run length (bytes) in a gather index at or above which a
#: strided-copy form would have been cheaper — the "tiny-block gather where
#: coalescing was possible" smell.  DDTBench's genuinely irregular gathers
#: (LAMMPS ~11 B, SPECFEM3D ~4.5 B) stay below it.
GATHER_COALESCABLE_RUN = 32


@dataclass
class PlanReport:
    """Everything one verified compilation produced (CI report material)."""

    subject: str
    blocks: int
    size: int
    extent: int
    executor: str
    passes: tuple[str, ...] = ()
    ops: int = 0
    calls: int = 0
    predicted_mb_s: float = 0.0
    verified: bool = True
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "subject": self.subject,
            "blocks": self.blocks,
            "size": self.size,
            "extent": self.extent,
            "executor": self.executor,
            "passes": list(self.passes),
            "ops": self.ops,
            "calls": self.calls,
            "predicted_mb_s": round(self.predicted_mb_s, 1),
            "verified": self.verified,
            "findings": [d.code for d in self.diagnostics],
        }


# ---------------------------------------------------------------------------
# well-formedness (RPD600/601/602)
# ---------------------------------------------------------------------------

def check_wellformed(prog: Program, *, path: Optional[str] = None,
                     subject: str = "", stage: str = "") -> list[Diagnostic]:
    """IR invariants over the symbolic byte-level write set.

    ``stage`` names the pipeline point being checked (e.g. a pass name) so
    a finding pinpoints which rewrite introduced the violation.
    """
    diags: list[Diagnostic] = []
    where = f" after pass '{stage}'" if stage else ""

    def emit(code: str, message: str, hint: str = "") -> None:
        diags.append(Diagnostic(code, message + where, hint=hint,
                                file=path, subject=subject))

    src, dst = enumerate_bytes(prog)
    if dst.shape[0] != prog.size:
        emit("RPD600",
             f"program writes {dst.shape[0]} bytes but the typemap packs "
             f"{prog.size}",
             hint="every wire byte must be written exactly once")
    if dst.shape[0]:
        uniq = np.unique(dst)
        if uniq.shape[0] != dst.shape[0]:
            # First wire offset written more than once.
            order = np.sort(dst)
            dup = int(order[:-1][order[:-1] == order[1:]][0])
            emit("RPD600",
                 f"wire offset {dup} is written more than once",
                 hint="destination writes must be disjoint")
        bad_dst = (dst < 0) | (dst >= prog.size)
        if bad_dst.any():
            emit("RPD601",
                 f"wire offset {int(dst[bad_dst][0])} outside "
                 f"[0, {prog.size})")
        bad_src = (src < prog.src_lo) | (src >= prog.src_hi)
        if bad_src.any():
            emit("RPD601",
                 f"source offset {int(src[bad_src][0])} outside the true "
                 f"bounds [{prog.src_lo}, {prog.src_hi})",
                 hint="reads outside true_lb..true_ub touch bytes the "
                      "buffer may not have")
        if dst.shape[0] > 1:
            steps = np.diff(dst)
            if (steps <= 0).any():
                at = int(np.argmax(steps <= 0))
                emit("RPD602",
                     f"wire offsets not monotone: byte {int(dst[at + 1])} "
                     f"written after byte {int(dst[at])}",
                     hint="streaming unpack relies on front-to-back wire "
                          "order")
    return diags


# ---------------------------------------------------------------------------
# translation validation (RPD610)
# ---------------------------------------------------------------------------

def validate_pipeline(tm: Typemap,
                      pipeline: Iterable[Pass] | None = None, *,
                      path: Optional[str] = None, subject: str = ""
                      ) -> tuple[Program, tuple[str, ...], list[Diagnostic]]:
    """Run ``pipeline`` with every pass translation-validated.

    Returns ``(final program, applied pass names, diagnostics)``.  Each
    pass's output byte map is proven equal to its input byte map; the first
    divergence is reported as RPD610 naming the pass and the first
    diverging wire byte.  Well-formedness is checked on the initial
    lowering and re-checked after every pass that changed the program.
    """
    if pipeline is None:
        pipeline = default_pipeline()
    prog = lower_typemap(tm)
    diags = check_wellformed(prog, path=path, subject=subject)
    before = byte_map(prog)
    applied: list[str] = []
    for p in pipeline:
        new = p(prog)
        if new.ops == prog.ops:
            continue
        after = byte_map(new)
        if not np.array_equal(before, after):
            ne = before != after
            first = int(np.argmax(ne))
            diags.append(Diagnostic(
                "RPD610",
                f"pass '{p.name}' changed the byte map: wire byte {first} "
                f"read source {int(before[first])} before, "
                f"{int(after[first])} after "
                f"({int(ne.sum())} byte(s) diverge)",
                hint="the rewrite is not semantics-preserving; its output "
                     "must not be executed",
                file=path, subject=subject))
        diags.extend(check_wellformed(new, path=path, subject=subject,
                                      stage=p.name))
        applied.append(p.name)
        prog, before = new, after
    return prog, tuple(applied), diags


# ---------------------------------------------------------------------------
# static cost model (RPD620)
# ---------------------------------------------------------------------------

def predict_pack_time(prog: Program,
                      params: LinkParams = DEFAULT_PARAMS) -> float:
    """Predicted seconds to pack one element with the final IR.

    Each leaf numpy call pays the FFI-boundary ``callback_overhead``; copy
    leaves stream at ``copy_bandwidth``; a byte gather additionally pays
    the per-scalar ``elem_cost`` for every byte its index addresses (the
    same per-entry model the derived-datatype slow path is charged).
    """
    if prog.size == 0:
        return 0.0
    nbytes = moved_bytes(prog.ops)
    t = leaf_calls(prog.ops) * params.callback_overhead
    t += nbytes / params.copy_bandwidth
    gathered = sum(op.nbytes for op in prog.ops if isinstance(op, Gather))
    t += gathered * params.elem_cost
    return t


def _gather_runs(idx: np.ndarray) -> int:
    """Number of maximal contiguous runs in a gather index."""
    if idx.shape[0] <= 1:
        return idx.shape[0]
    return int(np.count_nonzero(np.diff(idx) != 1)) + 1


def cost_findings(prog: Program, params: LinkParams = DEFAULT_PARAMS, *,
                  path: Optional[str] = None,
                  subject: str = "") -> list[Diagnostic]:
    """RPD620 perf smells over the *final* (post-pipeline) IR."""
    diags: list[Diagnostic] = []

    def emit(message: str, hint: str) -> None:
        diags.append(Diagnostic("RPD620", message, hint=hint, file=path,
                                subject=subject))

    if prog.size == 0:
        return diags
    calls = leaf_calls(prog.ops)
    soft = params.iov_region_soft_limit()
    if calls > soft:
        mb_s = prog.size / predict_pack_time(prog, params) / 1e6
        emit(f"final IR needs {calls} numpy calls per element "
             f"(soft limit {soft}); predicted pack rate {mb_s:.0f} MB/s",
             hint="the layout defeats stride canonicalization; consider "
                  "restructuring the datatype or forcing the gather "
                  "executor")
    for op in prog.ops:
        if isinstance(op, Gather):
            runs = _gather_runs(op.src_index)
            mean_run = op.nbytes / max(runs, 1)
            if mean_run >= GATHER_COALESCABLE_RUN and runs <= soft:
                emit(f"byte gather over {runs} contiguous runs of "
                     f"{mean_run:.0f} bytes on average — coalesced copies "
                     f"would stream at memcpy rate",
                     hint="gather formation fired on a coalescable layout; "
                          "prefer executor='slices'")
        elif isinstance(op, StridedLoop):
            # Degenerate nest: an inner loop whose body moves fewer bytes
            # per iteration than one call's overhead is worth.
            inner_bytes = moved_bytes(op.body)
            if (op.count > 1 and leaf_calls(op.body) > 1
                    and inner_bytes < params.min_efficient_region_bytes()):
                emit(f"loop nest moves {inner_bytes} bytes per iteration "
                     f"across {leaf_calls(op.body)} calls",
                     hint="degenerate loop nest survived collapsing")
    return diags


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def verify_typemap(tm: Typemap, *, params: LinkParams = DEFAULT_PARAMS,
                   executor: str = "auto", many_rows: bool = True,
                   path: Optional[str] = None,
                   subject: str = "") -> PlanReport:
    """Verify one typemap's full compilation; the one-stop entry point.

    Runs the exact pipeline :class:`~repro.core.packplan.PackPlan` would
    compile (``executor``/``many_rows`` select the variant), translation-
    validating every pass, then applies the static cost model to the final
    IR.
    """
    pipeline = default_pipeline(many_rows=many_rows, executor=executor)
    final, applied, diags = validate_pipeline(tm, pipeline, path=path,
                                              subject=subject)
    diags.extend(cost_findings(final, params, path=path, subject=subject))
    t = predict_pack_time(final, params)
    kind = "gather" if any(isinstance(op, Gather) for op in final.ops) \
        else "slices"
    if tm.is_contiguous:
        kind = "contig"
    report = PlanReport(
        subject=subject or repr(tm),
        blocks=len(tm.merged_blocks()),
        size=tm.size, extent=tm.extent, executor=kind,
        passes=applied, ops=op_count(final.ops),
        calls=leaf_calls(final.ops),
        predicted_mb_s=(tm.size / t / 1e6) if t > 0 else float("inf"),
        verified=not any(d.severity == "error" for d in diags),
        diagnostics=diags)
    return report


def verify_datatype(dtype, *, params: LinkParams = DEFAULT_PARAMS,
                    executor: str = "auto",
                    path: Optional[str] = None,
                    subject: str = "") -> list[PlanReport]:
    """Verify both count-class compilations of a datatype.

    ``COUNT_ONE`` plans compile with the aliasing guard off (gather is
    allowed on overlapping-extent layouts), so both variants are proven.
    """
    name = subject or getattr(dtype, "name", "") or type(dtype).__name__
    tm = dtype.typemap
    reports = []
    for many_rows, tag in ((False, "count=1"), (True, "count>1")):
        reports.append(verify_typemap(
            tm, params=params, executor=executor, many_rows=many_rows,
            path=path, subject=f"{name}[{tag}]"))
    return reports


def ddtbench_corpus() -> list[tuple[str, object]]:
    """``(name, derived datatype)`` for every registered DDTBench workload."""
    from ..ddtbench.registry import WORKLOADS
    return [(name, cls().derived_datatype())
            for name, cls in WORKLOADS.items()]


# ---------------------------------------------------------------------------
# seeded miscompile corpus
# ---------------------------------------------------------------------------

def _map_first_block(ops: tuple, fn) -> tuple:
    """Apply ``fn`` to the first CopyBlock found (depth-first), once."""
    out = list(ops)
    for i, op in enumerate(out):
        if isinstance(op, CopyBlock):
            out[i] = fn(op)
            return tuple(out)
        if isinstance(op, StridedLoop):
            new_body = _map_first_block(op.body, fn)
            if new_body != op.body:
                out[i] = StridedLoop(op.count, op.src_stride,
                                     op.dst_stride, new_body)
                return tuple(out)
    return tuple(out)


def _bug_drop_tail(prog: Program) -> Program:
    ops = prog.ops
    if len(ops) > 1:
        return prog.with_ops(ops[:-1])
    if len(ops) == 1 and isinstance(ops[0], StridedLoop) \
            and ops[0].count > 1:
        lp = ops[0]
        return prog.with_ops((StridedLoop(lp.count - 1, lp.src_stride,
                                          lp.dst_stride, lp.body),))
    return prog


def _bug_shift_src(prog: Program) -> Program:
    return prog.with_ops(_map_first_block(
        prog.ops, lambda b: CopyBlock(b.src_off + 1, b.dst_off, b.nbytes)))


def _bug_reorder(prog: Program) -> Program:
    if len(prog.ops) > 1:
        return prog.with_ops(tuple(reversed(prog.ops)))
    return prog


def _bug_duplicate(prog: Program) -> Program:
    if prog.ops:
        return prog.with_ops(prog.ops + (prog.ops[0],))
    return prog


def _bug_stride_off_by_one(prog: Program) -> Program:
    out = list(prog.ops)
    for i, op in enumerate(out):
        if isinstance(op, StridedLoop):
            out[i] = StridedLoop(op.count, op.src_stride + 1,
                                 op.dst_stride, op.body)
            return prog.with_ops(tuple(out))
    return prog


def _fixture_struct() -> Typemap:
    """Three separated blocks: stays plain CopyBlocks through the pipeline."""
    from ..core import INT32, create_struct, resized
    t = create_struct([1, 1, 1], [0, 8, 20], [INT32, INT32, INT32])
    return resized(t, 0, 32).typemap


def _fixture_vector() -> Typemap:
    """A 16-row vector: canonicalizes to a single StridedLoop."""
    from ..core import FLOAT64, vector
    return vector(16, 2, 4, FLOAT64).typemap


@dataclass(frozen=True)
class MiscompileFixture:
    """One deliberately buggy rewrite and the typemap that exposes it."""

    name: str
    description: str
    #: Codes the verifier MUST emit when this bug runs (a subset check —
    #: collateral findings are allowed).
    expected_codes: frozenset
    bug: Pass
    typemap_factory: Callable[[], Typemap]

    def pipeline(self) -> tuple[Pass, ...]:
        """The default pipeline with the buggy pass appended."""
        return default_pipeline() + (self.bug,)

    def verify(self, *, path: Optional[str] = None) -> list[Diagnostic]:
        """Run the verifier against the seeded bug; returns its findings."""
        _, _, diags = validate_pipeline(self.typemap_factory(),
                                        self.pipeline(), path=path,
                                        subject=self.name)
        return diags


#: The seeded corpus.  Each entry exercises a distinct detection channel:
#: byte-map divergence (RPD610), duplicate wire writes (RPD600), and wire
#: order inversion (RPD602 — the byte *map* is unchanged, so only the
#: well-formedness walk can catch it).
MISCOMPILE_CORPUS: tuple[MiscompileFixture, ...] = (
    MiscompileFixture(
        "drop-tail", "silently drops the final op / loop iteration",
        frozenset({"RPD610"}),
        Pass("bug:drop-tail", _bug_drop_tail), _fixture_vector),
    MiscompileFixture(
        "shift-src", "reads every block one byte late",
        frozenset({"RPD610"}),
        Pass("bug:shift-src", _bug_shift_src), _fixture_struct),
    MiscompileFixture(
        "stride-off-by-one", "grows the source stride of a loop by one",
        frozenset({"RPD610"}),
        Pass("bug:stride-off-by-one", _bug_stride_off_by_one),
        _fixture_vector),
    MiscompileFixture(
        "reorder", "reverses op order (byte map unchanged)",
        frozenset({"RPD602"}),
        Pass("bug:reorder", _bug_reorder), _fixture_struct),
    MiscompileFixture(
        "duplicate", "emits the first op twice (byte map unchanged)",
        frozenset({"RPD600"}),
        Pass("bug:duplicate", _bug_duplicate), _fixture_struct),
)


def verify_miscompile_corpus(*, path: Optional[str] = None
                             ) -> tuple[list[Diagnostic], list[str]]:
    """Run every seeded fixture; returns ``(findings, missed fixtures)``.

    ``missed`` names fixtures whose expected codes did NOT all fire — a
    regression in the verifier itself.  CI asserts findings are non-empty
    and ``missed`` is empty.
    """
    findings: list[Diagnostic] = []
    missed: list[str] = []
    for fx in MISCOMPILE_CORPUS:
        diags = fx.verify(path=path)
        findings.extend(diags)
        got = {d.code for d in diags}
        if not fx.expected_codes <= got:
            missed.append(f"{fx.name}: expected {sorted(fx.expected_codes)}, "
                          f"got {sorted(got)}")
    return findings, missed
