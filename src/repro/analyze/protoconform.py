"""Transport conformance: replay model traces against the live fabric.

The model checker (:mod:`repro.analyze.protomodel`) certifies the protocol's
*decision table*; this module certifies that the shipped transport actually
follows it.  Each :class:`ConformanceCase` is a concrete workload — a
message set with byte sizes, a seeded :class:`~repro.ucp.faults.FaultPlan`
and a reliability configuration — that is executed twice:

* **predicted**: every observable of the run is derived purely from the
  shared transition table (:mod:`repro.ucp.transitions`) plus the fault
  plan's deterministic decision functions — no transport code runs;
* **observed**: the same workload runs on the live stack
  (:func:`repro.mpi.run` over :mod:`repro.ucp`) through a transport-neutral
  driver (plain ``irecv``/``isend``/``wait`` with per-request error
  capture), and the observables are read back from payloads, raised error
  classes, message traces and the injector's fault/recovery event log.

Compared observables, per message: selected wire protocol, delivery,
payload integrity, sender- and receiver-side MPI error classes; per
channel: the exact NACK/retransmission schedule (round numbers and
fragment sets); per job: the reliability counters (retransmitted
fragments, suppressed duplicates, healed reorders, exhausted and lost
transfers).  Any difference is an **RPD720** model/implementation
divergence.

Because prediction and implementation share one decision table, a clean
conformance run plus a clean model check close the loop: the table is
verified under all interleavings, and the transport is verified to
implement the table.

Case-design constraints (so predictions stay closed-form): message tags
are unique (FIFO ordering is checked separately by the tag-match property
tests), crash/stall events are left to the model checker (their timing is
cost-model-dependent), and drop faults without the reliability protocol
ride on eager-only messages (a lost rendezvous handshake would park the
job on the failure detector's timeout path).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import MPI_ERR_PROC_FAILED, MPIError
from ..ucp import transitions
from ..ucp.faults import FaultPlan, ReliabilityConfig
from ..ucp.netsim import DEFAULT_PARAMS
from .diagnostics import Diagnostic
from .protomodel import MsgSpec

__all__ = [
    "ConformanceCase", "ConformanceReport", "builtin_cases",
    "predict_case", "observe_case", "compare_case", "run_conformance",
]


@dataclass(frozen=True)
class ConformanceCase:
    """One live-vs-model workload."""

    name: str
    nranks: int
    messages: tuple          # of MsgSpec (expect_recv/may_cancel unused)
    plan: FaultPlan
    reliability: Optional[ReliabilityConfig] = None

    @property
    def reliable(self) -> bool:
        return self.reliability is not None and self.reliability.enabled


def _fill(mid: int) -> int:
    """Deterministic payload byte of message ``mid``."""
    return (mid * 37 + 11) % 251


def _nfrags(nbytes: int, frag_size: int) -> int:
    return max(1, math.ceil(nbytes / frag_size))


def _channel_seq(case: ConformanceCase) -> dict[int, int]:
    """``mid -> per-channel sequence number`` under program order.

    Each rank sends its messages in ``mid`` order, and the injector
    numbers messages per (src, dst) channel in transmission order, so a
    message's seq is its index among same-channel messages.
    """
    seqs: dict[int, int] = {}
    counters: dict[tuple[int, int], int] = {}
    for m in sorted(case.messages, key=lambda m: m.mid):
        key = (m.src, m.dst)
        seqs[m.mid] = counters.get(key, 0)
        counters[key] = seqs[m.mid] + 1
    return seqs


# ---------------------------------------------------------------------------
# prediction (pure: shared transition table + fault-plan decisions)
# ---------------------------------------------------------------------------

def predict_case(case: ConformanceCase, params=DEFAULT_PARAMS) -> dict:
    """Model-side observables of ``case`` — no transport code runs."""
    plan = case.plan
    rel = case.reliability or ReliabilityConfig(enabled=False)
    seqs = _channel_seq(case)
    msgs: dict[int, dict] = {}
    retransmits: dict[str, list] = {}
    stats = {"retransmits": 0, "exhausted": 0, "lost_messages": 0,
             "duplicates_dropped": 0, "duplicates_delivered": 0,
             "reorders_healed": 0, "reordered": 0}
    held: dict[tuple[int, int], bool] = {}

    for m in sorted(case.messages, key=lambda m: m.mid):
        seq = seqs[m.mid]
        proto = transitions.select_protocol("contig", m.nbytes,
                                            params.eager_limit)
        rndv = transitions.protocol_is_rndv(proto)
        frags = range(_nfrags(m.nbytes, params.frag_size))
        dropped, corrupted = plan.frag_fates(m.src, m.dst, seq, frags)
        fates = plan.message_fates(m.src, m.dst, seq)
        rec = {"proto": proto, "delivered": True, "intact": True,
               "send_err": None, "recv_err": None}

        if case.reliable:
            rounds, remaining = transitions.resolve_retries(
                lambda fr, rnd: plan.frag_fates(m.src, m.dst, seq, fr,
                                                rnd=rnd),
                rel.retry_limit, dropped, corrupted)
            for r in rounds:
                retransmits.setdefault(f"{m.src}->{m.dst}", []).append(
                    {"seq": seq, "round": r.round, "frags": list(r.frags)})
                stats["retransmits"] += len(r.frags)
            if remaining:
                # Retry budget exhausted: the envelope is poisoned.  A
                # rendezvous sender is released with the failure; an eager
                # send already completed locally and stays "successful".
                stats["exhausted"] += 1
                stats["lost_messages"] += 1
                rec.update(delivered=False, intact=False,
                           recv_err=MPI_ERR_PROC_FAILED,
                           send_err=MPI_ERR_PROC_FAILED if rndv else None)
            else:
                if fates["duplicate"]:
                    if transitions.duplicate_suppressed(True, seq, (seq,)):
                        stats["duplicates_dropped"] += 1
                    else:  # pragma: no cover - mutant behaviour
                        stats["duplicates_delivered"] += 1
                if fates["reorder"]:
                    stats["reorders_healed"] += 1
        else:
            if dropped:
                # Any lost fragment kills the unreliable datagram.
                stats["lost_messages"] += 1
                reported = transitions.loss_is_reported_without_reliability()
                rec.update(delivered=False, intact=False,
                           recv_err=MPI_ERR_PROC_FAILED if reported
                           else None,
                           send_err=MPI_ERR_PROC_FAILED
                           if rndv and reported else None)
            else:
                if corrupted:
                    rec["intact"] = False  # delivered, CRC mismatch
                if fates["duplicate"]:
                    stats["duplicates_delivered"] += 1
                key = (m.src, m.dst)
                if fates["reorder"] and not held.get(key):
                    held[key] = True  # swaps with the channel successor
                    stats["reordered"] += 1

        msgs[m.mid] = rec
    return {"msgs": msgs, "retransmits": retransmits, "stats": stats}


# ---------------------------------------------------------------------------
# observation (the live transport)
# ---------------------------------------------------------------------------

def observe_case(case: ConformanceCase, params=DEFAULT_PARAMS,
                 transport: Optional[str] = None) -> dict:
    """Run ``case`` on the live stack and read back the observables.

    ``transport`` selects the backend the case runs on; the predicted
    model is backend-independent, so a divergence on one backend only is
    a transport bug, not a protocol bug.
    """
    from ..mpi.comm import ERRORS_RETURN
    from ..mpi.runtime import run

    msgs = sorted(case.messages, key=lambda m: m.mid)

    def rank_fn(comm):
        # Per-request error capture (ULFM-style continuation), so one
        # failed transfer never hides the others' outcomes.
        comm.set_errhandler(ERRORS_RETURN)
        r = comm.rank
        recvs, sends, out = [], [], {"recv": {}, "send": {}}
        for m in msgs:
            if m.dst == r:
                buf = np.zeros(m.nbytes, dtype=np.uint8)
                recvs.append((m, buf, comm.irecv(buf, source=m.src,
                                                 tag=m.mid)))
        for m in msgs:
            if m.src == r:
                payload = np.full(m.nbytes, _fill(m.mid), dtype=np.uint8)
                sends.append((m, comm.isend(payload, dest=m.dst,
                                            tag=m.mid)))
        for m, buf, req in recvs:
            try:
                req.wait()
                out["recv"][m.mid] = {
                    "ok": True,
                    "intact": bool((buf == _fill(m.mid)).all())}
            except MPIError as exc:
                out["recv"][m.mid] = {"ok": False, "err": exc.code}
        for m, req in sends:
            try:
                req.wait()
                out["send"][m.mid] = {"ok": True}
            except MPIError as exc:
                out["send"][m.mid] = {"ok": False, "err": exc.code}
        return out

    job = run(rank_fn, nprocs=case.nranks, params=params,
              trace_messages=True, faults=case.plan,
              reliability=case.reliability, transport=transport)

    out_msgs: dict[int, dict] = {}
    for m in msgs:
        sent = job.results[m.src]["send"].get(m.mid, {})
        rcvd = job.results[m.dst]["recv"].get(m.mid, {})
        out_msgs[m.mid] = {
            "proto": None,  # filled from the sender trace below
            "delivered": bool(rcvd.get("ok")),
            "intact": bool(rcvd.get("ok") and rcvd.get("intact")),
            "send_err": None if sent.get("ok", True) else sent.get("err"),
            "recv_err": None if rcvd.get("ok", True) else rcvd.get("err"),
        }
    # The sender trace lists one "send" event per isend in program order.
    for rank in range(case.nranks):
        rank_msgs = [m for m in msgs if m.src == rank]
        events = [e for e in job.traces[rank] if e["event"] == "send"]
        for m, ev in zip(rank_msgs, events):
            out_msgs[m.mid]["proto"] = ev["protocol"]

    retransmits: dict[str, list] = {}
    for chan, events in job.fault_trace.items():
        for ev in events:
            if ev["event"] == "retransmit":
                retransmits.setdefault(chan, []).append(
                    {"seq": ev["seq"], "round": ev["round"],
                     "frags": list(ev["frags"])})
    stats = {k: 0 for k in ("retransmits", "exhausted", "lost_messages",
                            "duplicates_dropped", "duplicates_delivered",
                            "reorders_healed", "reordered")}
    for snap in job.reliability:
        for k in stats:
            stats[k] += int(snap.get(k, 0))
    return {"msgs": out_msgs, "retransmits": retransmits, "stats": stats}


# ---------------------------------------------------------------------------
# comparison -> RPD720
# ---------------------------------------------------------------------------

_MSG_FIELDS = ("proto", "delivered", "intact", "send_err", "recv_err")


def compare_case(case: ConformanceCase, predicted: dict,
                 observed: dict) -> list[Diagnostic]:
    """Diff model-side and live observables; every mismatch is RPD720."""
    diags: list[Diagnostic] = []
    by_mid = {m.mid: m for m in case.messages}

    def emit(what: str, want, got) -> None:
        diags.append(Diagnostic(
            "RPD720",
            f"[{case.name}] {what}: model predicts {want!r}, live "
            f"transport observed {got!r}",
            hint="model and implementation share repro.ucp.transitions; "
                 "a divergence means the transport bypassed the decision "
                 "table (or the model abstraction broke)",
            subject=case.name))

    for mid in sorted(by_mid):
        m = by_mid[mid]
        p, o = predicted["msgs"][mid], observed["msgs"][mid]
        for f in _MSG_FIELDS:
            if p[f] != o[f]:
                emit(f"message m{mid} ({m.src}->{m.dst}, {m.nbytes}B) "
                     f"field '{f}'", p[f], o[f])
    chans = set(predicted["retransmits"]) | set(observed["retransmits"])
    for chan in sorted(chans):
        p = predicted["retransmits"].get(chan, [])
        o = observed["retransmits"].get(chan, [])
        if p != o:
            emit(f"retransmission schedule on channel {chan}", p, o)
    for k in sorted(predicted["stats"]):
        if predicted["stats"][k] != observed["stats"][k]:
            emit(f"reliability counter '{k}'", predicted["stats"][k],
                 observed["stats"][k])
    return diags


# ---------------------------------------------------------------------------
# the case matrix and the driver
# ---------------------------------------------------------------------------

def builtin_cases(nranks: int = 3, seed: int = 2024,
                  eager_limit: int = DEFAULT_PARAMS.eager_limit
                  ) -> list[ConformanceCase]:
    """The conformance matrix ``repro-analyze proto --conformance`` runs."""
    nranks = max(2, min(4, nranks))
    small, boundary, big = 4096, eager_limit, eager_limit * 3

    def msgs(*triples):
        return tuple(MsgSpec(mid=k, src=s, dst=d, nbytes=n)
                     for k, (s, d, n) in enumerate(triples))

    ring = msgs(*(((r, (r + 1) % nranks,
                    small if r % 2 else big)) for r in range(nranks)))
    fan = msgs((0, 1, small), (0, 1, big), (0, 1, boundary),
               (0, 1, boundary + 1))
    rel = ReliabilityConfig(enabled=True, retry_limit=4)
    return [
        # Fault-free: protocol selection (incl. the exact eager/rendezvous
        # boundary) and clean delivery on every channel.
        ConformanceCase("baseline", nranks, ring + tuple(
            MsgSpec(mid=len(ring) + i, src=s.src, dst=s.dst,
                    nbytes=s.nbytes) for i, s in enumerate(fan)),
            FaultPlan(seed=seed)),
        # Unreliable datagrams: drops kill eager messages outright.  The
        # sizes differ (1-4 fragments each) so the seeded draws mix
        # delivered and lost messages in one run.
        ConformanceCase("drop-lossy", 2,
                        msgs((0, 1, 4096), (0, 1, 12000), (0, 1, 20000),
                             (0, 1, 30000)),
                        FaultPlan(seed=2001, drop=0.3)),
        # Unreliable corruption: delivered, flagged by intactness.
        ConformanceCase("corrupt-lossy", 2, fan,
                        FaultPlan(seed=seed + 2, corrupt=0.5)),
        # Reliability heals drops; the exact retransmission schedule is
        # predicted round by round.
        ConformanceCase("drop-reliable", nranks, ring,
                        FaultPlan(seed=seed + 3, drop=0.4),
                        rel),
        ConformanceCase("corrupt-reliable", 2, fan,
                        FaultPlan(seed=seed + 4, corrupt=0.4), rel),
        # Certain loss on the first channel message: budget exhaustion.
        ConformanceCase("drop-exhaust", 2,
                        msgs((0, 1, small), (0, 1, big)),
                        FaultPlan(seed=seed + 5, drop=1.0,
                                  window=(0, 1)),
                        ReliabilityConfig(enabled=True, retry_limit=2)),
        # Duplicates suppressed / reorders healed by the sequencing layer.
        ConformanceCase("dup-reorder-reliable", 2,
                        msgs((0, 1, small), (0, 1, small), (0, 1, small),
                             (0, 1, small)),
                        FaultPlan(seed=seed + 6, duplicate=0.5,
                                  reorder=0.5),
                        rel),
        # Duplicates delivered twice on the raw fabric (receiver posts one
        # recv per tag; clones land in the unexpected queue).
        ConformanceCase("dup-lossy", 2,
                        msgs((0, 1, small), (0, 1, small)),
                        FaultPlan(seed=seed + 7, duplicate=1.0)),
    ]


@dataclass
class ConformanceReport:
    """Outcome of one conformance sweep."""

    cases: list = field(default_factory=list)   # per-case dicts
    diagnostics: list = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def messages(self) -> int:
        return sum(c["messages"] for c in self.cases)

    def to_dict(self) -> dict:
        return {
            "cases": self.cases,
            "messages": self.messages,
            "divergences": len(self.diagnostics),
            "elapsed_s": self.elapsed,
        }


def run_conformance(cases: Optional[list] = None,
                    params=DEFAULT_PARAMS,
                    transport: Optional[str] = None) -> ConformanceReport:
    """Predict and observe every case; RPD720 for each divergence."""
    report = ConformanceReport()
    t0 = time.perf_counter()
    for case in (builtin_cases() if cases is None else cases):
        predicted = predict_case(case, params)
        observed = observe_case(case, params, transport=transport)
        diags = compare_case(case, predicted, observed)
        report.diagnostics.extend(diags)
        report.cases.append({
            "name": case.name,
            "nranks": case.nranks,
            "messages": len(case.messages),
            "reliable": case.reliable,
            "divergences": len(diags),
        })
    report.elapsed = time.perf_counter() - t0
    return report
