"""Callback contract verification for custom datatypes.

Two layers, both transport-free:

* :func:`check_callback_signatures` — purely static: inspects each callback
  in a :class:`~repro.core.callbacks.CallbackSet` against the ``Protocol``
  arities of :mod:`repro.core.callbacks` and flags structural asymmetries
  (pack without unpack, ``inorder`` without a packed stream).
* :func:`run_contract_harness` — a symbolic driver that replays the paper's
  Listing 3–5 choreography on a small synthetic buffer *without* any
  transport or virtual clock: state → query → pack loop → regions →
  state-free, optionally followed by an unpack pass into a receive buffer
  and a re-pack, asserting the cross-callback contracts (query total equals
  the sum of pack outputs, roundtrip reproduces the stream, region counts
  match, state is freed exactly once).

:func:`verify_callbacks` combines both.  Running transport-free matters:
contract violations surface as precise diagnostics at analysis time instead
of corrupted bytes or mis-charged virtual time deep inside a simulated run
(see DESIGN.md, "Static analysis").
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Optional

import numpy as np

from ..core.callbacks import CallbackSet
from ..core.custom import CustomDatatype
from ..core.regions import Region
from .diagnostics import Diagnostic

#: Documented positional-argument count of each callback (Listings 3-5,
#: after the C out-parameter -> return value translation).
EXPECTED_ARITY: dict[str, int] = {
    "query_fn": 3,         # (state, buf, count)
    "pack_fn": 5,          # (state, buf, count, offset, dst)
    "unpack_fn": 5,        # (state, buf, count, offset, src)
    "region_count_fn": 3,  # (state, buf, count)
    "region_fn": 4,        # (state, buf, count, region_count)
    "state_fn": 3,         # (context, buf, count)
    "state_free_fn": 1,    # (state,)
}

#: Extra bytes of destination space offered beyond the promised total, so a
#: pack callback that *over*-delivers is observed rather than truncated.
_PACK_SLACK = 16

#: Hard cap on harness pack/unpack iterations (runaway-callback backstop).
_MAX_CALLS = 10_000

#: Attribute names whose presence on a state object suggests it owns
#: resources and therefore needs a ``state_free_fn``.
_RESOURCE_ATTRS = ("close", "free", "release", "__exit__")


class _HarnessAbort(Exception):
    """Internal: a callback failed; diagnostics were already recorded."""


def _arity_problem(fn: Callable, expected: int) -> Optional[str]:
    """Describe why ``fn`` cannot take ``expected`` positional args, if so."""
    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):  # builtins, C callables: trust them
        return None
    min_pos = 0
    max_pos = 0
    unlimited = False
    for p in sig.parameters.values():
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD):
            max_pos += 1
            if p.default is p.empty:
                min_pos += 1
        elif p.kind is p.VAR_POSITIONAL:
            unlimited = True
        elif p.kind is p.KEYWORD_ONLY and p.default is p.empty:
            return (f"has a required keyword-only parameter {p.name!r}; the "
                    f"engine passes positionally")
    if expected < min_pos:
        return f"requires at least {min_pos} arguments, engine passes {expected}"
    if not unlimited and expected > max_pos:
        return f"accepts at most {max_pos} arguments, engine passes {expected}"
    return None


def check_callback_signatures(callbacks: CallbackSet, inorder: bool = False,
                              subject: str = "", path: Optional[str] = None
                              ) -> list[Diagnostic]:
    """Static checks: arities plus structural pack/unpack requirements."""
    diags: list[Diagnostic] = []

    def emit(code, message, hint=""):
        diags.append(Diagnostic(code, message, hint=hint, file=path,
                                subject=subject))

    for name, expected in EXPECTED_ARITY.items():
        fn = getattr(callbacks, name)
        if fn is None:
            continue
        problem = _arity_problem(fn, expected)
        if problem:
            emit("RPD201",
                 f"{name} {problem} (documented signature takes {expected})",
                 hint=f"match the {name} Protocol in repro.core.callbacks")

    if (callbacks.pack_fn is None) != (callbacks.unpack_fn is None):
        have, miss = (("pack_fn", "unpack_fn")
                      if callbacks.unpack_fn is None
                      else ("unpack_fn", "pack_fn"))
        emit("RPD202",
             f"{have} is provided but {miss} is not; the type can only "
             f"travel in one direction",
             hint=f"provide {miss}, or drop both for a regions-only type")
    if inorder and (callbacks.pack_fn is None or callbacks.unpack_fn is None):
        emit("RPD203",
             "inorder=True constrains fragment ordering but the type has no "
             "packed stream to order",
             hint="drop inorder, or provide pack_fn/unpack_fn")
    return diags


class _Recorder:
    """Counts callback invocations and routes failures into diagnostics."""

    def __init__(self, diags: list[Diagnostic], subject: str,
                 path: Optional[str]):
        self.diags = diags
        self.subject = subject
        self.path = path
        self.calls: dict[str, int] = {}

    def emit(self, code, message, hint=""):
        self.diags.append(Diagnostic(code, message, hint=hint, file=self.path,
                                     subject=self.subject))

    def call(self, name: str, fn: Callable, *args) -> Any:
        self.calls[name] = self.calls.get(name, 0) + 1
        try:
            return fn(*args)
        except Exception as exc:
            self.emit("RPD214",
                      f"{name} raised {type(exc).__name__}: {exc}",
                      hint="callbacks must report failure via exceptions "
                           "only for genuinely invalid data; fix the "
                           "callback or the fixture buffer")
            raise _HarnessAbort from exc


def _pack_stream(rec: _Recorder, cb: CallbackSet, state: Any, buf: Any,
                 count: int, total: int, frag_size: int) -> Optional[bytes]:
    """Drive the pack loop with slack space; verify RPD210. None on abort."""
    packed = bytearray()
    offset = 0
    budget = total + _PACK_SLACK
    for _ in range(_MAX_CALLS):
        if offset >= budget:
            break
        dst = np.zeros(min(frag_size, budget - offset), dtype=np.uint8)
        used = rec.call("pack_fn", cb.pack_fn, state, buf, count, offset, dst)
        if not isinstance(used, int) or used < 0 or used > dst.shape[0]:
            rec.emit("RPD214",
                     f"pack_fn returned {used!r} for a {dst.shape[0]}-byte "
                     f"fragment; must return bytes written (0..len(dst))")
            return None
        if used == 0:
            break
        packed += bytes(dst[:used])
        offset += used
    if offset != total:
        direction = "fewer" if offset < total else "more"
        rec.emit("RPD210",
                 f"query_fn promised {total} packed bytes but pack_fn "
                 f"delivered {offset} ({direction} than promised)",
                 hint="make query_fn and pack_fn agree on the exact wire "
                      "size of the buffer")
        return None
    return bytes(packed)


def _send_pass(rec: _Recorder, cb: CallbackSet, buf: Any, count: int,
               frag_size: int) -> tuple[Optional[bytes], list[Region]]:
    """One full send-side choreography; returns (packed, regions)."""
    state = None
    allocated = False
    packed: Optional[bytes] = None
    regions: list[Region] = []
    try:
        if cb.state_fn is not None:
            state = rec.call("state_fn", cb.state_fn, cb.context, buf, count)
            allocated = True
        total = rec.call("query_fn", cb.query_fn, state, buf, count)
        if not isinstance(total, int) or total < 0:
            rec.emit("RPD210",
                     f"query_fn must return a non-negative int on the send "
                     f"side, got {total!r}")
            raise _HarnessAbort
        if total > 0 and cb.pack_fn is not None:
            packed = _pack_stream(rec, cb, state, buf, count, total, frag_size)
        elif total == 0:
            packed = b""
        if cb.has_regions:
            n = rec.call("region_count_fn", cb.region_count_fn, state, buf,
                         count)
            if not isinstance(n, int) or n < 0:
                rec.emit("RPD212",
                         f"region_count_fn must return a non-negative int, "
                         f"got {n!r}")
                raise _HarnessAbort
            got = list(rec.call("region_fn", cb.region_fn, state, buf, count,
                                n))
            bad = [r for r in got if not isinstance(r, Region)]
            if len(got) != n or bad:
                detail = (f"returned {len(got)} regions"
                          if len(got) != n else
                          f"returned a non-Region entry: {bad[0]!r}")
                rec.emit("RPD212",
                         f"region_count_fn promised {n} regions but "
                         f"region_fn {detail}",
                         hint="the region pair must agree for the same "
                              "(state, buf, count)")
                raise _HarnessAbort
            regions = got
    except _HarnessAbort:
        pass
    finally:
        if allocated and cb.state_free_fn is not None:
            try:
                rec.call("state_free_fn", cb.state_free_fn, state)
            except _HarnessAbort:
                pass
    if allocated and cb.state_free_fn is None and state is not None:
        owns = [a for a in _RESOURCE_ATTRS if hasattr(state, a)]
        if owns:
            rec.emit("RPD213",
                     f"state_fn returns an object exposing {owns[0]!r} but "
                     f"no state_free_fn is registered; the resource leaks "
                     f"after every operation",
                     hint="register a state_free_fn that releases the state")
    return packed, regions


def _recv_pass(rec: _Recorder, cb: CallbackSet, buf: Any, count: int,
               packed: bytes, send_regions: list[Region],
               frag_size: int) -> bool:
    """Deliver the packed stream and region bytes; True when completed."""
    state = None
    allocated = False
    ok = False
    try:
        if cb.state_fn is not None:
            state = rec.call("state_fn", cb.state_fn, cb.context, buf, count)
            allocated = True
        offset = 0
        while offset < len(packed):
            step = min(frag_size, len(packed) - offset)
            frag = np.frombuffer(packed[offset:offset + step], dtype=np.uint8)
            rec.call("unpack_fn", cb.unpack_fn, state, buf, count, offset,
                     frag)
            offset += step
        if send_regions:
            n = rec.call("region_count_fn", cb.region_count_fn, state, buf,
                         count)
            if n != len(send_regions):
                rec.emit("RPD212",
                         f"receive side reports {n} regions for the same "
                         f"logical buffer the send side split into "
                         f"{len(send_regions)}")
                raise _HarnessAbort
            rregs = list(rec.call("region_fn", cb.region_fn, state, buf,
                                  count, n))
            if len(rregs) != n:
                rec.emit("RPD212",
                         f"region_count_fn promised {n} regions but "
                         f"region_fn returned {len(rregs)} on the receive "
                         f"side")
                raise _HarnessAbort
            for i, (sr, rr) in enumerate(zip(send_regions, rregs)):
                if rr.nbytes != sr.nbytes:
                    rec.emit("RPD211",
                             f"region {i} length mismatch after unpack: "
                             f"send {sr.nbytes} B, receive {rr.nbytes} B",
                             hint="receive-side regions must be sized from "
                                  "the just-unpacked in-band metadata")
                    raise _HarnessAbort
                rr.writable_view()[:rr.nbytes] = sr.read_bytes()
        ok = True
    except _HarnessAbort:
        pass
    finally:
        if allocated and cb.state_free_fn is not None:
            try:
                rec.call("state_free_fn", cb.state_free_fn, state)
            except _HarnessAbort:
                ok = False
    return ok


def run_contract_harness(dtype: CustomDatatype, send_buf: Any,
                         recv_buf: Any = None, count: int = 1,
                         frag_size: int = 64,
                         path: Optional[str] = None) -> list[Diagnostic]:
    """Replay the callback choreography on synthetic buffers; no transport.

    ``send_buf`` is a filled application buffer; ``recv_buf`` (optional) is
    an empty buffer of the same logical shape, enabling the roundtrip and
    receive-side region checks.
    """
    cb = dtype.callbacks
    diags: list[Diagnostic] = []
    rec = _Recorder(diags, dtype.name, path)

    packed, regions = _send_pass(rec, cb, send_buf, count, frag_size)

    roundtrip_ok = (packed is not None and recv_buf is not None
                    and cb.unpack_fn is not None
                    and not any(d.severity == "error" for d in diags))
    if roundtrip_ok:
        if _recv_pass(rec, cb, recv_buf, count, packed, regions, frag_size):
            repacked, _ = _send_pass(rec, cb, recv_buf, count, frag_size)
            if repacked is not None and repacked != packed:
                first = next((i for i, (a, b) in
                              enumerate(zip(packed, repacked)) if a != b),
                             min(len(packed), len(repacked)))
                rec.emit("RPD211",
                         f"re-packing the unpacked buffer produced a "
                         f"different stream (first difference at byte "
                         f"{first} of {len(packed)})",
                         hint="unpack_fn must reconstruct every field that "
                              "pack_fn serializes")

    # state lifecycle accounting across all passes (exactly-once per op).
    allocs = rec.calls.get("state_fn", 0)
    frees = rec.calls.get("state_free_fn", 0)
    if cb.state_fn is not None and cb.state_free_fn is not None \
            and allocs != frees:
        rec.emit("RPD213",
                 f"state_fn ran {allocs} time(s) but state_free_fn ran "
                 f"{frees} time(s); the lifecycle contract is exactly one "
                 f"free per operation")

    # The re-pack pass repeats the send choreography, so per-pass findings
    # (e.g. the leak heuristic) can appear twice; report each once.
    unique: list[Diagnostic] = []
    for d in diags:
        if d not in unique:
            unique.append(d)
    return unique


def verify_callbacks(dtype: CustomDatatype, send_buf: Any = None,
                     recv_buf: Any = None, count: int = 1,
                     frag_size: int = 64,
                     path: Optional[str] = None) -> list[Diagnostic]:
    """Static signature checks plus (when a buffer is given) the harness.

    The harness is skipped when the static pass already found an arity
    error — calling a known-misshaped callback would only produce noise.
    """
    if isinstance(dtype, CallbackSet):
        dtype = CustomDatatype(dtype, name="callback-set")
    diags = check_callback_signatures(dtype.callbacks, inorder=dtype.inorder,
                                      subject=dtype.name, path=path)
    if send_buf is not None and not any(d.code == "RPD201" for d in diags):
        diags += run_contract_harness(dtype, send_buf, recv_buf=recv_buf,
                                      count=count, frag_size=frag_size,
                                      path=path)
    return diags
