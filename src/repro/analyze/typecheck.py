"""Static validity and performance checks over datatype typemaps.

:func:`analyze_datatype` walks a committed or uncommitted datatype and
reports structural defects (overlaps, bounds violations, aliasing resizes,
declaration-order hazards) and performance smells (layouts that the
simulated transport in :mod:`repro.ucp.netsim` charges disproportionately
for).  Everything here is *static*: no buffer is packed and no transport is
touched, so the checks are safe to run on arbitrary user-constructed types.

Custom (callback-driven) datatypes have no typemap; for those this module
defers to the static half of :mod:`repro.analyze.contracts`.
"""

from __future__ import annotations

from typing import Optional

from ..core.datatype import Datatype, PredefinedDatatype
from ..ucp.netsim import DEFAULT_PARAMS, LinkParams
from .diagnostics import Diagnostic

#: Minimum merged-block count before the tiny-fragment smell (RPD111) is
#: considered; a struct with three small fields is normal, a thousand
#: 8-byte shards is the pathology the DDT literature measures.
FRAGMENT_SMELL_MIN_BLOCKS = 16

#: Density divisor for the sparse-layout smell (RPD112): flag when the
#: extent is more than this many times the packed size.
SPARSE_EXTENT_FACTOR = 64


def analyze_datatype(dtype: Datatype, params: LinkParams = DEFAULT_PARAMS,
                     path: Optional[str] = None) -> list[Diagnostic]:
    """Return all diagnostics for one datatype (empty list when clean)."""
    if isinstance(dtype, PredefinedDatatype):
        return []
    if getattr(dtype, "is_custom", False):
        # No typemap to inspect; run the transport-free signature checks.
        from .contracts import check_callback_signatures
        return check_callback_signatures(
            dtype.callbacks, inorder=getattr(dtype, "inorder", False),
            subject=dtype.name, path=path)

    tm = dtype.typemap
    subject = dtype.name
    kind = getattr(dtype, "kind", "")
    diags: list[Diagnostic] = []

    def emit(code: str, message: str, hint: str = ""):
        diags.append(Diagnostic(code, message, hint=hint, file=path,
                                subject=subject))

    if not tm.blocks:
        emit("RPD106",
             "typemap is empty: every transfer of this type moves 0 bytes",
             hint="drop the zero-length blocks or send count=0 of a real type")
        return diags

    # -- overlap (RPD101) ------------------------------------------------
    by_addr = sorted(tm.blocks, key=lambda b: (b.offset, b.end))
    overlaps = [(a, b) for a, b in zip(by_addr, by_addr[1:]) if a.end > b.offset]
    if overlaps:
        a, b = overlaps[0]
        emit("RPD101",
             f"{len(overlaps)} overlapping block pair(s); first: "
             f"[{a.offset},{a.end}) overlaps [{b.offset},{b.end}) — "
             f"receiving into this type writes the same bytes twice",
             hint="increase the stride or fix the displacement list so "
                  "blocks are disjoint")

    # -- bounds (RPD102/RPD103/RPD104) -----------------------------------
    if tm.size > 0:
        if tm.extent <= 0:
            emit("RPD103",
                 f"extent is {tm.extent} but the type packs {tm.size} bytes; "
                 f"arrays of this type collapse onto one element",
                 hint=f"resize with extent >= true extent ({tm.true_extent})")
        elif tm.true_lb < tm.lb or tm.true_ub > tm.ub:
            if kind == "resized":
                emit("RPD104",
                     f"resized extent {tm.extent} is smaller than the true "
                     f"extent {tm.true_extent}; consecutive array elements "
                     f"alias each other",
                     hint=f"use extent >= {tm.true_extent}, or keep the "
                          f"overlap only for deliberate interleaving")
            else:
                emit("RPD102",
                     f"data spans [{tm.true_lb},{tm.true_ub}) but the "
                     f"declared window is [{tm.lb},{tm.ub}); displacements "
                     f"fall outside the element",
                     hint="fix the displacements or declare explicit bounds "
                          "with resized()")

    # -- declaration vs address order (RPD105) ---------------------------
    offsets = [b.offset for b in tm.blocks]
    if any(n < p for p, n in zip(offsets, offsets[1:])):
        emit("RPD105",
             "pack order (declaration order) walks addresses non-"
             "monotonically; in-order consumers see bytes out of address "
             "order and the pack engine loses its sequential access pattern",
             hint="declare fields/blocks in increasing address order where "
                  "the wire format allows it")

    # -- performance smells (RPD110/RPD111/RPD112) -----------------------
    merged = tm.merged_blocks()
    soft_limit = params.iov_region_soft_limit()
    if len(merged) > soft_limit:
        emit("RPD110",
             f"{len(merged)} memory regions per element exceeds the "
             f"scatter/gather soft limit ({soft_limit}); per-entry iovec "
             f"overhead will dominate the transfer",
             hint="coalesce regions (larger blocks, contiguous staging) or "
                  "switch to a packing custom datatype")
    else:
        min_frag = min(b.length for b in merged)
        floor = params.min_efficient_region_bytes()
        if len(merged) >= FRAGMENT_SMELL_MIN_BLOCKS and min_frag < floor:
            emit("RPD111",
                 f"{len(merged)} fragments with smallest {min_frag} B, "
                 f"below the {floor} B break-even entry size of the "
                 f"simulated link",
                 hint="batch small blocks into fewer larger regions, or "
                      "pack them in-band")
    if (tm.has_gaps and tm.extent > params.eager_limit
            and tm.size * SPARSE_EXTENT_FACTOR < tm.extent):
        emit("RPD112",
             f"element spans {tm.extent} B of address space but packs only "
             f"{tm.size} B; rendezvous registration pays for the whole span",
             hint="tighten the extent with resized() or transfer the dense "
                  "subset explicitly")
    return diags


def assert_valid_datatype(dtype: Datatype,
                          params: LinkParams = DEFAULT_PARAMS) -> None:
    """Raise :class:`repro.errors.DiagnosticError` on error-severity findings.

    Convenience for library call sites that want a hard gate (the analyzer
    CLI reports instead of raising).
    """
    from ..errors import DiagnosticError
    errors = [d for d in analyze_datatype(dtype, params)
              if d.severity == "error"]
    if errors:
        raise DiagnosticError(
            f"{dtype.name}: {errors[0].message}",
            code=errors[0].mpi_errno, diagnostics=errors)
