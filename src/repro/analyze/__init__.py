"""Static analysis for repro MPI programs and datatypes.

Four engines behind one CLI (``python -m repro.analyze`` or the
``repro-analyze`` console script):

* :mod:`~repro.analyze.typecheck` — datatype validity and layout
  performance checks over typemaps (``RPD1xx``);
* :mod:`~repro.analyze.contracts` — static signature checks plus a
  transport-free symbolic harness for the seven custom-datatype callbacks
  (``RPD2xx``);
* :mod:`~repro.analyze.lint` — an AST linter for MPI usage mistakes in
  application source (``RPD3xx``);
* :mod:`~repro.analyze.flow` — a rank-symbolic abstract interpreter that
  statically verifies the whole communication structure of ``main(comm)``
  programs (``RPD5xx``; the ``repro-analyze flow`` subcommand);
* :mod:`~repro.analyze.planverify` — a static verifier for the pack-plan
  IR: well-formedness invariants, translation validation of every rewrite
  pass, and a cost model over the final IR (``RPD6xx``; the
  ``repro-analyze plans`` subcommand).

All findings are :class:`~repro.analyze.diagnostics.Diagnostic` objects
carrying a stable ``RPD###`` code, a severity, the nearest ``MPI_ERR_*``
class, and a fix-it hint.  ``# noqa: RPD###`` on the flagged line
suppresses a finding in place (:mod:`~repro.analyze.suppress`).
"""

from .contracts import (check_callback_signatures, run_contract_harness,
                        verify_callbacks)
from .diagnostics import (CODE_TABLE, CodeInfo, Diagnostic, SEVERITIES,
                          severity_rank, sort_diagnostics)
from .flow import FlowReport, analyze_flow_file, analyze_flow_source
from .lint import lint_file, lint_source
from .cli import flow_main, main, plans_main
from .planverify import (MISCOMPILE_CORPUS, MiscompileFixture, PlanReport,
                         check_wellformed, cost_findings, predict_pack_time,
                         validate_pipeline, verify_datatype,
                         verify_miscompile_corpus, verify_typemap)
from .typecheck import analyze_datatype, assert_valid_datatype

__all__ = [
    "CODE_TABLE",
    "CodeInfo",
    "Diagnostic",
    "FlowReport",
    "MISCOMPILE_CORPUS",
    "MiscompileFixture",
    "PlanReport",
    "SEVERITIES",
    "analyze_datatype",
    "analyze_flow_file",
    "analyze_flow_source",
    "assert_valid_datatype",
    "check_callback_signatures",
    "check_wellformed",
    "cost_findings",
    "flow_main",
    "lint_file",
    "lint_source",
    "main",
    "plans_main",
    "predict_pack_time",
    "run_contract_harness",
    "severity_rank",
    "sort_diagnostics",
    "validate_pipeline",
    "verify_callbacks",
    "verify_datatype",
    "verify_miscompile_corpus",
    "verify_typemap",
]
