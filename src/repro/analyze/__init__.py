"""Static analysis for repro MPI programs and datatypes.

Three engines behind one CLI (``python -m repro.analyze`` or the
``repro-analyze`` console script):

* :mod:`~repro.analyze.typecheck` — datatype validity and layout
  performance checks over typemaps (``RPD1xx``);
* :mod:`~repro.analyze.contracts` — static signature checks plus a
  transport-free symbolic harness for the seven custom-datatype callbacks
  (``RPD2xx``);
* :mod:`~repro.analyze.lint` — an AST linter for MPI usage mistakes in
  application source (``RPD3xx``).

All findings are :class:`~repro.analyze.diagnostics.Diagnostic` objects
carrying a stable ``RPD###`` code, a severity, the nearest ``MPI_ERR_*``
class, and a fix-it hint.
"""

from .contracts import (check_callback_signatures, run_contract_harness,
                        verify_callbacks)
from .diagnostics import (CODE_TABLE, CodeInfo, Diagnostic, SEVERITIES,
                          severity_rank, sort_diagnostics)
from .lint import lint_file, lint_source
from .cli import main
from .typecheck import analyze_datatype, assert_valid_datatype

__all__ = [
    "CODE_TABLE",
    "CodeInfo",
    "Diagnostic",
    "SEVERITIES",
    "analyze_datatype",
    "assert_valid_datatype",
    "check_callback_signatures",
    "lint_file",
    "lint_source",
    "main",
    "run_contract_harness",
    "severity_rank",
    "sort_diagnostics",
    "verify_callbacks",
]
