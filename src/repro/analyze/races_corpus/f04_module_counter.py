# expects: RPD801
"""Seeded bug: module-level id allocation via ``next(itertools.count)``.

This is the wire envelope's msg-id allocator exactly as it shipped before
the lock-guarded ``_MsgIdAllocator``: every sender thread advances one
shared ``itertools.count`` and only the GIL makes the draw atomic.  A
free-threaded build (or a subinterpreter transport) can hand two messages
the same id, breaking duplicate suppression.
"""

import itertools
import threading

_msg_ids = itertools.count(1)

_registry_lock = threading.Lock()
_registry = {}


def allocate_msg_id():
    return next(_msg_ids)             # BUG: shared counter, no lock


def register(msg):
    with _registry_lock:
        _registry[allocate_msg_id()] = msg
