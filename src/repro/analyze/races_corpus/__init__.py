"""Seeded concurrency-bug corpus for :mod:`repro.analyze.races`.

Each fixture is a self-contained module seeded with one concurrency or
portability bug, mirroring a defect class the analyzer must catch in the
fabric.  The first comment line names the designated diagnostic
(``# expects: RPD8xx``); :func:`repro.analyze.races.run_corpus` fails —
and ``repro-analyze races --corpus`` exits 2 — if any fixture escapes its
designation, exactly like the protocol-mutant corpus gates ``proto``.

The fixtures are static-analysis subjects only; nothing imports them.
Several reproduce bugs that previously shipped (``f04`` is the wire
msg-id counter before it grew a lock-guarded allocator, ``f07`` is the
typecache factory call that used to run under the cache lock).
"""
