# expects: RPD803
"""Seeded bug: blocking ``Event.wait`` while holding a lock.

The waiter holds ``self._lock`` across an ``Event.wait`` that only the
*setter* can satisfy — but the setter needs the same lock to publish the
result.  The fabric's rendezvous path waits on completion events with no
lock held for exactly this reason.
"""

import threading


class Rendezvous:
    def __init__(self):
        self._lock = threading.Lock()
        self.ready = threading.Event()
        self.payload = None

    def consume(self):
        with self._lock:
            self.ready.wait()         # BUG: waits while holding the lock
            return self.payload

    def publish(self, payload):
        with self._lock:
            self.payload = payload
            self.ready.set()
