# expects: RPD801
"""Seeded bug: a compound counter update relying on GIL atomicity.

``record_hit`` does ``self.hits += 1`` outside the lock that guards the
rest of the statistics — a read-modify-write that loses updates the moment
two threads interleave between the load and the store.  Mirrors the class
of bug the BufferPool/MemoryTracker statistics are audited for.
"""

import threading


class PoolStats:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def record_hit(self):
        self.hits += 1                # BUG: lost-update race off the GIL

    def record_miss(self):
        with self._lock:
            self.misses += 1

    def snapshot(self):
        with self._lock:
            return {"hits": self.hits, "misses": self.misses}
