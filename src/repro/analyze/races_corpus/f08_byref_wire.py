# expects: RPD810
"""Seeded bug: user buffers placed on the wire envelope by reference.

``send_eager`` promises eager semantics (the caller may reuse the buffer
as soon as the call returns) but stages the caller's live views on the
envelope without copying — correct only while both ranks share one
address space.  The compliant path below shows the copy barrier the
analyzer expects.
"""


class WireEnvelope:
    def __init__(self, chunks=(), total=0):
        self.chunks = list(chunks)
        self.total = total


def _copy(buffers):
    return [bytearray(b) for b in buffers]


def send_eager(buffers):
    return WireEnvelope(chunks=buffers,      # BUG: aliases caller memory
                        total=len(buffers))


def send_staged(buffers):
    staged = _copy(buffers)
    return WireEnvelope(chunks=staged, total=len(staged))
