# expects: RPD802
"""Seeded bug: two locks acquired in opposite orders on different paths.

``transfer`` takes the pool lock then the stats lock; ``rebalance`` takes
them in the opposite order.  Two threads running one path each deadlock,
each holding the lock the other needs.
"""

import threading


class Ledger:
    def __init__(self):
        self._pool_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.balance = 0
        self.moves = 0

    def transfer(self, amount):
        with self._pool_lock:
            with self._stats_lock:    # BUG: pool -> stats here ...
                self.balance += amount
                self.moves += 1

    def rebalance(self):
        with self._stats_lock:
            with self._pool_lock:     # BUG: ... stats -> pool here
                self.balance //= 2
