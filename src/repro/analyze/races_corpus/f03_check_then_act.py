# expects: RPD801
"""Seeded bug: check-then-act on a shared cache outside the lock.

Between ``key in self.cache`` and the insert, another thread can insert
the same key: both run the loader, and the second insert clobbers the
first — the classic cache-stampede race the plan-cache LRU avoids by
holding its lock across the test and the update.
"""

import threading


class ResultCache:
    def __init__(self, loader):
        self._lock = threading.Lock()
        self.cache = {}
        self.loader = loader

    def lookup(self, key):
        if key not in self.cache:         # BUG: test races the insert
            self.cache[key] = self.loader(key)
        return self.cache[key]

    def invalidate(self, key):
        with self._lock:
            self.cache.pop(key, None)
