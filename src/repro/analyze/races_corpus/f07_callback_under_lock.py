# expects: RPD803
"""Seeded bug: a user-supplied factory runs while the cache lock is held.

This is ``repro.core.typecache.datatype_of`` exactly as it shipped before
the factory call moved outside the lock: arbitrary user code runs inside
the critical section, so a factory that re-enters the cache (a struct
type resolving a nested registered type) self-deadlocks on the
non-reentrant lock, and every other thread stalls for as long as the
factory runs.
"""

import threading

_lock = threading.Lock()
_cache = {}


def cached(key, factory):
    with _lock:
        if key in _cache:
            return _cache[key]
        value = factory()             # BUG: user code under the lock
        _cache[key] = value
        return value
