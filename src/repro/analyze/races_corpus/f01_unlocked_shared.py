# expects: RPD800
"""Seeded bug: a lock-owning class writes shared state outside the lock.

``drain()`` mutates ``self.pending`` without taking ``self._lock`` even
though ``submit()`` guards the same list — the lockset of ``pending`` is
inconsistent, so a concurrent submit can lose or double-process entries.
"""

import threading


class WorkQueue:
    def __init__(self):
        self._lock = threading.Lock()
        self.pending = []

    def submit(self, item):
        with self._lock:
            self.pending.append(item)

    def drain(self):
        out = list(self.pending)
        self.pending.clear()          # BUG: no lock held
        return out
