# expects: RPD811
"""Seeded bug: non-serializable control-plane state on the wire envelope.

A ``threading.Event`` and a completion callback only mean something inside
one process; a shared-memory or socket transport cannot move either.  The
envelope must carry serializable state only (ids, offsets, CRCs) and keep
synchronization on the rank-local side of the wire.
"""

import threading


class WirePacket:
    def __init__(self, payload, on_done=None):
        self.payload = bytes(payload)
        self.delivered = threading.Event()        # BUG: not serializable
        self.on_done = on_done or (lambda: None)
        self.error: BaseException | None = None   # BUG: not serializable
