"""Diagnostic model and the stable ``RPD###`` code table.

Every finding the analyzers emit is a :class:`Diagnostic` carrying a code
from :data:`CODE_TABLE`.  Codes are stable across releases (new checks get
new numbers; retired checks leave holes), severities are fixed per code, and
each code maps onto the closest MPI error class so findings promoted to
exceptions (:class:`repro.errors.DiagnosticError`) stay dispatchable by
``MPI_ERR_*`` value.

Numbering scheme:

* ``RPD1xx`` — datatype/typemap validity and layout performance smells,
* ``RPD2xx`` — custom-datatype callback contract violations,
* ``RPD3xx`` — MPI-usage lints on application source files,
* ``RPD4xx`` — dynamic findings from the runtime sanitizer,
* ``RPD5xx`` — whole-program communication-flow verification
  (:mod:`repro.analyze.flow`), plus tool notices (``RPD590``),
* ``RPD6xx`` — pack-plan IR verification (:mod:`repro.analyze.planverify`):
  well-formedness invariants, translation validation of the rewrite passes,
  and the static cost model's perf smells,
* ``RPD7xx`` — protocol model checking and transport conformance
  (:mod:`repro.analyze.protomodel` / :mod:`repro.analyze.protoconform`):
  exhaustively explored interleaving violations (deadlock, loss,
  duplicate delivery, pool misuse, ULFM breaks, retry divergence) and
  model/implementation divergence on live traffic,
* ``RPD8xx`` — concurrency and transport portability
  (:mod:`repro.analyze.races`): per-attribute lockset inference over the
  fabric classes (unsynchronized shared state, GIL-atomicity reliance),
  the lock-order graph (inversions, blocking under a lock), and the wire
  audit that decides what a process-boundary transport must copy versus
  map (by-reference payload aliasing, non-serializable envelope fields).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import (MPI_ERR_ARG, MPI_ERR_BUFFER, MPI_ERR_COMM,
                      MPI_ERR_INTERN, MPI_ERR_OTHER, MPI_ERR_PENDING,
                      MPI_ERR_PROC_FAILED, MPI_ERR_REQUEST, MPI_ERR_TAG,
                      MPI_ERR_TRUNCATE, MPI_ERR_TYPE, error_name)

#: Severity levels, most severe first.  ``perf`` findings (smells) and
#: ``notice`` findings (tool status, e.g. incomplete analysis or an unused
#: suppression) are reported only under ``--strict``.
SEVERITIES = ("error", "warning", "perf", "notice")

#: Severities hidden unless ``--strict`` is given.
STRICT_ONLY_SEVERITIES = frozenset({"perf", "notice"})

_SEVERITY_RANK = {s: i for i, s in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class CodeInfo:
    """Static metadata of one diagnostic code."""

    code: str
    severity: str
    mpi_errno: int
    title: str

    @property
    def mpi_error_name(self) -> str:
        return error_name(self.mpi_errno)


def _c(code: str, severity: str, mpi_errno: int, title: str) -> CodeInfo:
    return CodeInfo(code, severity, mpi_errno, title)


#: The full registry.  Text in ``title`` is the generic description; each
#: emitted Diagnostic carries a specific ``message`` as well.
CODE_TABLE: dict[str, CodeInfo] = {c.code: c for c in (
    # -- datatype validity (typecheck.py) --------------------------------
    _c("RPD101", "error", MPI_ERR_TYPE,
       "typemap blocks overlap in memory"),
    _c("RPD102", "error", MPI_ERR_TYPE,
       "block displacement outside the declared [lb, lb+extent) window"),
    _c("RPD103", "error", MPI_ERR_TYPE,
       "non-positive extent on a datatype that carries data"),
    _c("RPD104", "warning", MPI_ERR_TYPE,
       "resized extent smaller than the true extent (elements alias)"),
    _c("RPD105", "warning", MPI_ERR_TYPE,
       "declaration (pack) order differs from address order"),
    _c("RPD106", "warning", MPI_ERR_TYPE,
       "empty typemap: the datatype packs zero bytes"),
    _c("RPD110", "perf", MPI_ERR_TYPE,
       "region count per element exceeds the iovec soft limit"),
    _c("RPD111", "perf", MPI_ERR_TYPE,
       "many fragments below the efficient scatter/gather entry size"),
    _c("RPD112", "perf", MPI_ERR_TYPE,
       "sparse layout: extent vastly exceeds the packed size"),
    # -- callback contracts (contracts.py) -------------------------------
    _c("RPD201", "error", MPI_ERR_ARG,
       "callback signature cannot accept the documented argument count"),
    _c("RPD202", "warning", MPI_ERR_ARG,
       "pack_fn/unpack_fn provided asymmetrically"),
    _c("RPD203", "warning", MPI_ERR_ARG,
       "inorder datatype without both pack_fn and unpack_fn"),
    _c("RPD210", "error", MPI_ERR_OTHER,
       "query packed-size promise disagrees with pack output"),
    _c("RPD211", "error", MPI_ERR_OTHER,
       "pack -> unpack -> pack roundtrip does not reproduce the stream"),
    _c("RPD212", "error", MPI_ERR_OTHER,
       "region_count_fn promise disagrees with region_fn result"),
    _c("RPD213", "warning", MPI_ERR_OTHER,
       "per-operation state is leaked or freed an unexpected number of times"),
    _c("RPD214", "error", MPI_ERR_OTHER,
       "callback raised or returned an invalid value during the harness"),
    # -- MPI-usage lints (lint.py) ---------------------------------------
    _c("RPD300", "error", MPI_ERR_ARG,
       "source file could not be parsed or imported"),
    _c("RPD301", "warning", MPI_ERR_TAG,
       "send/recv tag constants do not match within the file"),
    _c("RPD302", "error", MPI_ERR_REQUEST,
       "nonblocking request is never waited on"),
    _c("RPD303", "warning", MPI_ERR_BUFFER,
       "buffer modified between nonblocking post and wait"),
    _c("RPD304", "warning", MPI_ERR_PENDING,
       "unconditional blocking send before blocking recv (deadlock risk)"),
    # -- runtime sanitizer (repro.sanitize) ------------------------------
    _c("RPD400", "error", MPI_ERR_BUFFER,
       "buffers of concurrent requests overlap with a writer"),
    _c("RPD401", "error", MPI_ERR_BUFFER,
       "send buffer modified while the send was in flight"),
    _c("RPD402", "error", MPI_ERR_BUFFER,
       "receive buffer modified between post and delivery"),
    _c("RPD410", "error", MPI_ERR_TYPE,
       "send and receive type signatures do not match"),
    _c("RPD411", "error", MPI_ERR_TRUNCATE,
       "message longer than the matched receive (truncation)"),
    _c("RPD420", "warning", MPI_ERR_REQUEST,
       "request never completed before its rank finished"),
    _c("RPD421", "warning", MPI_ERR_PENDING,
       "message was sent but never received"),
    _c("RPD430", "error", MPI_ERR_OTHER,
       "packed-size promise disagrees between sender and receiver"),
    _c("RPD431", "error", MPI_ERR_OTHER,
       "region count/length disagreement on live traffic"),
    _c("RPD432", "warning", MPI_ERR_OTHER,
       "custom-datatype per-operation state is allocated but never freed"),
    _c("RPD440", "error", MPI_ERR_PENDING,
       "distributed deadlock: cyclic or hopeless wait-for dependency"),
    _c("RPD450", "error", MPI_ERR_PROC_FAILED,
       "fragment lost on the wire with no reliability protocol to recover it"),
    _c("RPD451", "error", MPI_ERR_OTHER,
       "corrupted payload delivered to the application (CRC mismatch)"),
    _c("RPD452", "error", MPI_ERR_PROC_FAILED,
       "reliability retry budget exhausted; transfer abandoned"),
    # -- static communication-flow verifier (flow.py / commgraph.py) ------
    _c("RPD500", "error", MPI_ERR_PENDING,
       "static deadlock: cycle in the blocking wait-for graph"),
    _c("RPD501", "warning", MPI_ERR_PENDING,
       "send is never received by any rank"),
    _c("RPD502", "error", MPI_ERR_PENDING,
       "receive can never be matched by any send"),
    _c("RPD510", "error", MPI_ERR_TYPE,
       "static type-signature mismatch between matched send and receive"),
    _c("RPD511", "error", MPI_ERR_TRUNCATE,
       "message statically larger than the matched receive (truncation)"),
    _c("RPD520", "error", MPI_ERR_COMM,
       "ranks reach different collectives, or in different orders"),
    _c("RPD530", "notice", MPI_ERR_OTHER,
       "flow analysis incomplete: a value escaped the abstract domain"),
    _c("RPD590", "notice", MPI_ERR_OTHER,
       "unused noqa suppression"),
    # -- pack-plan IR verifier (planverify.py) ----------------------------
    _c("RPD600", "error", MPI_ERR_INTERN,
       "plan IR writes overlapping wire (destination) offsets"),
    _c("RPD601", "error", MPI_ERR_INTERN,
       "plan IR source offset outside the typemap's true bounds"),
    _c("RPD602", "error", MPI_ERR_INTERN,
       "plan IR wire offsets are not monotone in execution order"),
    _c("RPD610", "error", MPI_ERR_INTERN,
       "rewrite pass miscompiled the plan: byte map changed"),
    _c("RPD620", "perf", MPI_ERR_TYPE,
       "final plan IR predicted slow by the static cost model"),
    # -- protocol model checker (protomodel.py / protoconform.py) ---------
    _c("RPD700", "error", MPI_ERR_PENDING,
       "protocol deadlock: a reachable quiescent state leaves ranks stuck"),
    _c("RPD701", "error", MPI_ERR_OTHER,
       "lost message: send completed, payload never delivered, no failure "
       "reported"),
    _c("RPD702", "error", MPI_ERR_OTHER,
       "delivery the seq/CRC layer must suppress (duplicate or corrupt) "
       "reached the application"),
    _c("RPD703", "error", MPI_ERR_INTERN,
       "pool-buffer leak or double-recycle along a protocol path"),
    _c("RPD704", "error", MPI_ERR_PROC_FAILED,
       "ULFM violation: operation succeeded against a crashed peer without "
       "MPI_ERR_PROC_FAILED"),
    _c("RPD710", "error", MPI_ERR_OTHER,
       "retry-budget divergence: retransmission loop exceeds its progress "
       "bound"),
    _c("RPD720", "error", MPI_ERR_INTERN,
       "model/implementation divergence: live transport disagrees with the "
       "protocol model"),
    # -- concurrency & transport portability (races.py) -------------------
    _c("RPD800", "error", MPI_ERR_INTERN,
       "unsynchronized shared mutable state: attribute of a lock-owning "
       "class written outside every lock"),
    _c("RPD801", "error", MPI_ERR_INTERN,
       "GIL-atomicity reliance: compound read-modify-write or "
       "check-then-act on shared state outside any lock"),
    _c("RPD802", "error", MPI_ERR_PENDING,
       "lock-order inversion: two locks are acquired in opposite orders "
       "on different paths"),
    _c("RPD803", "warning", MPI_ERR_PENDING,
       "blocking call or user callback executed while holding a lock"),
    _c("RPD810", "warning", MPI_ERR_BUFFER,
       "user buffer aliased by reference across the rank boundary on the "
       "wire envelope"),
    _c("RPD811", "warning", MPI_ERR_TYPE,
       "non-serializable object placed on the wire envelope"),
)}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a code plus its concrete evidence and location."""

    code: str
    message: str
    #: Fix-it suggestion; empty when no mechanical fix exists.
    hint: str = ""
    #: Source file the finding is attributed to (lint / --import runs).
    file: Optional[str] = None
    line: int = 0
    col: int = 0
    #: What was analyzed: a datatype name, callback name, or variable.
    subject: str = ""

    def __post_init__(self):
        if self.code not in CODE_TABLE:
            raise KeyError(f"unknown diagnostic code {self.code!r}")

    @property
    def info(self) -> CodeInfo:
        return CODE_TABLE[self.code]

    @property
    def severity(self) -> str:
        return self.info.severity

    @property
    def mpi_errno(self) -> int:
        return self.info.mpi_errno

    def to_dict(self) -> dict:
        """JSON-stable rendering (schema v1; key set is frozen)."""
        return {
            "code": self.code,
            "severity": self.severity,
            "mpi_error": self.info.mpi_error_name,
            "message": self.message,
            "hint": self.hint,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "subject": self.subject,
        }

    def format_text(self) -> str:
        # Columns are stored 0-based (AST col_offset; JSON keeps the raw
        # value) but rendered 1-based, the flake8/editor convention.
        loc = ""
        if self.file:
            loc = f"{self.file}:{self.line}:{self.col + 1}: " if self.line \
                else f"{self.file}: "
        subj = f" [{self.subject}]" if self.subject else ""
        hint = f"\n    hint: {self.hint}" if self.hint else ""
        return f"{loc}{self.code} {self.severity}: {self.message}{subj}{hint}"


def severity_rank(severity: str) -> int:
    """Sort key: 0 for error, larger for milder levels."""
    return _SEVERITY_RANK[severity]


def sort_diagnostics(diags) -> list[Diagnostic]:
    """Stable ordering used by every reporter: file, line, col, code."""
    return sorted(diags, key=lambda d: (d.file or "", d.line, d.col, d.code,
                                        d.subject))
