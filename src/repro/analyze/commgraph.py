"""Static communication graph: matching and scheduling of per-rank traces.

:mod:`repro.analyze.flow` abstractly interprets a ``main(comm)`` program
once per rank and produces one *trace* (an ordered list of the operations
below) per rank.  This module replays those traces against each other with
MPI's matching rules — FIFO per (source, dest, communicator) channel,
wildcard receives, eager/rendezvous send completion, synchronizing
collectives — and turns everything that cannot line up into ``RPD5xx``
diagnostics:

* ``RPD500`` — the replay wedges with a cycle in the wait-for graph,
* ``RPD501``/``RPD502`` — sends/receives that no peer ever matches,
* ``RPD510``/``RPD511`` — matched pairs whose static type signatures
  disagree (same :func:`repro.core.signature.signature_compatible` rules
  the runtime sanitizer applies to wire envelopes),
* ``RPD520`` — ranks reach different collectives, or the same collectives
  in different orders.

The replay is deterministic: wildcard receives take the earliest posted
candidate, which is sufficient for the verifier's job of proving a
*consistent* program sound (programs that rely on racy wildcard orders are
beyond the static subset and are left to the runtime sanitizer).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..core.signature import (format_signature, is_untyped, signature_bytes,
                              signature_compatible)
from ..ucp.netsim import DEFAULT_PARAMS
from .diagnostics import Diagnostic

#: Wildcard sentinel shared with :mod:`repro.mpi.requests`.
ANY = -1

#: Eager/rendezvous threshold used for blocking-send completion; mirrors
#: the simulated fabric so the static verdict and the sanitizer agree.
EAGER_LIMIT = DEFAULT_PARAMS.eager_limit


@dataclass
class P2POp:
    """One point-to-point operation (send or recv) in a rank's trace."""

    kind: str                       # "send" | "recv"
    peer: int                       # world dest/source rank; ANY for wildcard
    tag: int                        # ANY for MPI_ANY_TAG
    comm: tuple                     # communicator key (shared across ranks)
    blocking: bool = True
    sync: bool = False              # ssend/issend: never eager
    signature: Optional[tuple] = None   # run-length (code, n) or None
    nbytes: Optional[int] = None    # packed bytes moved/accepted, if known
    req: Optional[int] = None       # request id for nonblocking ops
    escaped: bool = False           # request left the analyzable subset
    line: int = 0
    col: int = 0
    # filled by the replay:
    rank: int = -1
    seq: int = -1

    def describe(self) -> str:
        peer = "ANY" if self.peer == ANY else str(self.peer)
        tag = "ANY" if self.tag == ANY else str(self.tag)
        role = "dest" if self.kind == "send" else "source"
        return f"{self.kind}({role}={peer}, tag={tag})"


@dataclass
class WaitOp:
    """Completion point for previously posted nonblocking requests."""

    reqs: tuple                     # request ids this wait completes
    line: int = 0
    col: int = 0


@dataclass
class CollOp:
    """One collective call; ``detail`` carries root/op for comparison."""

    name: str
    comm: tuple
    members: tuple                  # world ranks participating
    detail: str = ""                # e.g. "root=0" or "op=sum"
    line: int = 0
    col: int = 0

    def describe(self) -> str:
        det = f", {self.detail}" if self.detail else ""
        return f"{self.name}(){det}" if not det else f"{self.name}({self.detail})"


@dataclass
class _ReqState:
    op: P2POp
    completed: bool = False
    matched: Optional[P2POp] = None


@dataclass
class _RankState:
    trace: list
    idx: int = 0
    done: bool = False
    blocked: Optional[tuple] = None     # ("wait", [req ids]) | ("coll", op)
    coll_slots: dict = field(default_factory=dict)  # comm key -> next slot


def classify_mismatch(send_sig, recv_sig, send_bytes, recv_bytes):
    """Classify a send/recv pairing: (code, reason) or (None, "").

    ``RPD511`` when the scalar prefixes agree but the message is longer
    than the receive (MPI truncation); ``RPD510`` when the scalar
    sequences themselves disagree.  Unknown signatures fall back to the
    byte capacities when both are known.
    """
    ok, reason = signature_compatible(send_sig, recv_sig)
    if not ok:
        if send_sig is not None and recv_sig is not None and (
                is_untyped(send_sig) or is_untyped(recv_sig)
                or signature_bytes(send_sig) > signature_bytes(recv_sig)
                and _is_prefix(recv_sig, send_sig)):
            return "RPD511", reason
        return "RPD510", reason
    if send_bytes is not None and recv_bytes is not None \
            and send_bytes > recv_bytes:
        return "RPD511", (f"message of {send_bytes} bytes does not fit "
                          f"the {recv_bytes}-byte receive")
    return None, ""


def _is_prefix(short_sig, long_sig) -> bool:
    """True when ``short_sig``'s scalar sequence is a prefix of ``long_sig``."""
    i = j = 0
    left_l = left_s = 0
    while True:
        if left_s == 0:
            if i == len(short_sig):
                return True
            left_s = short_sig[i][1]
        if left_l == 0:
            if j == len(long_sig):
                return False
            left_l = long_sig[j][1]
        if short_sig[i][0] != long_sig[j][0]:
            return False
        step = min(left_s, left_l)
        left_s -= step
        left_l -= step
        if left_s == 0:
            i += 1
        if left_l == 0:
            j += 1


class TraceReplay:
    """Replays one set of per-rank traces and collects diagnostics."""

    def __init__(self, traces: dict, path: Optional[str] = None,
                 context: str = ""):
        #: rank -> list of ops.  Ops are mutated (rank/seq stamped), so the
        #: caller hands over ownership.
        self.traces = traces
        self.path = path
        self.context = context          # e.g. "nprocs=3"
        self.nprocs = len(traces)
        self.diags: list[Diagnostic] = []
        self._seq = 0
        self._reqs: dict[tuple, _ReqState] = {}
        self._op_state: dict[int, _ReqState] = {}   # id(op) -> state
        self._pending_sends: list[P2POp] = []
        self._pending_recvs: list[P2POp] = []
        self._coll_arrivals: dict = {}   # (comm, slot) -> {rank: CollOp}
        self._coll_reported: set = set()
        self._ranks = {r: _RankState(trace) for r, trace in traces.items()}

    # -- reporting ------------------------------------------------------

    def _note(self) -> str:
        return f" [{self.context}]" if self.context else ""

    def emit(self, code: str, message: str, hint: str = "", line: int = 0,
             col: int = 0, subject: str = "") -> None:
        self.diags.append(Diagnostic(
            code, message + self._note(), hint=hint, file=self.path,
            line=line, col=col, subject=subject))

    # -- matching -------------------------------------------------------

    def _compatible(self, send: P2POp, recv: P2POp) -> bool:
        return (send.comm == recv.comm
                and send.peer == recv.rank
                and recv.peer in (ANY, send.rank)
                and recv.tag in (ANY, send.tag))

    def _channel_blocked(self, send: P2POp) -> bool:
        """Non-overtaking: an earlier unmatched send on the same
        (source, dest, comm, tag-matchable) channel must match first."""
        for other in self._pending_sends:
            if other is send:
                return False
            if (other.rank == send.rank and other.peer == send.peer
                    and other.comm == send.comm and other.tag == send.tag):
                return True
        return False

    def _match(self, send: P2POp, recv: P2POp) -> None:
        self._pending_sends.remove(send)
        self._pending_recvs.remove(recv)
        sstate = self._op_state.get(id(send))
        rstate = self._op_state.get(id(recv))
        if sstate:
            sstate.completed = True
            sstate.matched = recv
        if rstate:
            rstate.completed = True
            rstate.matched = send
        code, reason = classify_mismatch(send.signature, recv.signature,
                                         send.nbytes, recv.nbytes)
        if code:
            self.emit(
                code,
                f"rank {recv.rank} receive matches the send posted by rank "
                f"{send.rank} at line {send.line}, but {reason}",
                hint="send and receive must describe the same scalar "
                     "sequence (MPI type-matching rules)"
                if code == "RPD510" else
                "post a receive at least as large as the message",
                line=recv.line, col=recv.col)

    def _try_match_recv(self, recv: P2POp) -> bool:
        for send in self._pending_sends:
            if self._compatible(send, recv) \
                    and not self._channel_blocked(send):
                self._match(send, recv)
                return True
        return False

    def _try_match_send(self, send: P2POp) -> bool:
        if self._channel_blocked(send):
            return False
        for recv in self._pending_recvs:
            if self._compatible(send, recv):
                self._match(send, recv)
                return True
        return False

    def _send_completed(self, send: P2POp, state: _ReqState) -> bool:
        """Eager sends complete at post; rendezvous on match."""
        if state.completed:
            return True
        if not send.sync and (send.nbytes is None
                              or send.nbytes <= EAGER_LIMIT):
            return True
        return False

    # -- execution ------------------------------------------------------

    def _post(self, rank: int, op) -> Optional[tuple]:
        """Execute one op for ``rank``; returns a blocked marker or None."""
        if isinstance(op, P2POp):
            if op.req is None:
                op = replace(op)  # keep anonymous ops distinct per post
            op.rank = rank
            op.seq = self._seq
            self._seq += 1
            state = _ReqState(op)
            key = (rank, op.req if op.req is not None
                   else ("anon", op.seq))
            self._reqs[key] = state
            self._op_state[id(op)] = state
            if op.kind == "send":
                self._pending_sends.append(op)
                self._try_match_send(op)
            else:
                self._pending_recvs.append(op)
                self._try_match_recv(op)
            if op.blocking:
                return ("wait", [key])
            return None
        if isinstance(op, WaitOp):
            keys = [(rank, r) for r in op.reqs]
            return ("wait", keys)
        if isinstance(op, CollOp):
            st = self._ranks[rank]
            slot = st.coll_slots.get(op.comm, 0)
            st.coll_slots[op.comm] = slot + 1
            self._coll_arrivals.setdefault((op.comm, slot), {})[rank] = op
            return ("coll", (op.comm, slot, op))
        raise TypeError(f"unknown trace op {op!r}")

    def _wait_satisfied(self, rank: int, keys) -> bool:
        for key in keys:
            state = self._reqs.get(key)
            if state is None:
                continue
            if state.op.escaped:
                continue
            if state.op.kind == "send":
                if not self._send_completed(state.op, state):
                    return False
            elif not state.completed:
                return False
        return True

    def _coll_satisfied(self, comm_slot) -> bool:
        comm, slot, op = comm_slot
        arrivals = self._coll_arrivals.get((comm, slot), {})
        return set(arrivals) >= set(op.members)

    def _check_coll_agreement(self, comm, slot) -> None:
        if (comm, slot) in self._coll_reported:
            return
        arrivals = self._coll_arrivals.get((comm, slot), {})
        kinds = {(op.name, op.detail) for op in arrivals.values()}
        if len(kinds) > 1:
            self._coll_reported.add((comm, slot))
            per_rank = "; ".join(
                f"rank {r}: {arrivals[r].describe()} at line "
                f"{arrivals[r].line}" for r in sorted(arrivals))
            first = arrivals[min(arrivals)]
            self.emit(
                "RPD520",
                f"collective #{slot + 1} on this communicator diverges "
                f"across ranks: {per_rank}",
                hint="every rank of the communicator must call the same "
                     "collective sequence with the same root/op",
                line=first.line, col=first.col)

    def _advance(self) -> bool:
        """One scheduling sweep; True when any rank made progress."""
        progress = False
        for rank in sorted(self._ranks):
            st = self._ranks[rank]
            while not st.done:
                if st.blocked is not None:
                    kind, detail = st.blocked
                    if kind == "wait" and self._wait_satisfied(rank, detail):
                        st.blocked = None
                    elif kind == "coll" and self._coll_satisfied(detail):
                        comm, slot, _ = detail
                        self._check_coll_agreement(comm, slot)
                        st.blocked = None
                    else:
                        break
                    progress = True
                    continue
                if st.idx >= len(st.trace):
                    st.done = True
                    progress = True
                    break
                op = st.trace[st.idx]
                st.idx += 1
                st.blocked = self._post(rank, op)
                progress = True
        return progress

    # -- stuck-state analysis ------------------------------------------

    def _blocked_detail(self, rank: int):
        """(waited-on ranks, human description, line, col) for a blocked rank."""
        st = self._ranks[rank]
        kind, detail = st.blocked
        if kind == "coll":
            comm, slot, op = detail
            arrivals = self._coll_arrivals.get((comm, slot), {})
            missing = sorted(set(op.members) - set(arrivals))
            return (missing, f"{op.name} collective waiting for rank(s) "
                    f"{missing}", op.line, op.col)
        # wait on requests: the first incomplete one names the edge
        for key in detail:
            state = self._reqs.get(key)
            if state is None or state.op.escaped:
                continue
            op = state.op
            if op.kind == "send":
                if not self._send_completed(op, state):
                    return ([op.peer], op.describe(), op.line, op.col)
            elif not state.completed:
                targets = ([op.peer] if op.peer != ANY
                           else [r for r in self._ranks if r != rank])
                return (targets, op.describe(), op.line, op.col)
        return ([], "wait", 0, 0)

    def _report_stuck(self) -> None:
        blocked = {r: self._blocked_detail(r)
                   for r, st in self._ranks.items()
                   if not st.done and st.blocked is not None}
        if not blocked:
            return
        # Cycle search over live wait-for edges.
        edges = {r: [t for t in targets if t in blocked]
                 for r, (targets, _, _, _) in blocked.items()}
        cycle = _find_cycle(edges)
        if cycle:
            chain = " -> ".join(
                f"rank {r}: {blocked[r][1]} at line {blocked[r][2]}"
                for r in cycle)
            first = cycle[0]
            self.emit(
                "RPD500",
                f"static deadlock: {len(cycle)} rank(s) block each other "
                f"in a cycle: {chain} -> rank {cycle[0]}",
                hint="break the cycle: post receives first (irecv), use "
                     "sendrecv, or order by rank parity",
                line=blocked[first][2], col=blocked[first][3])
            return
        # Hopeless waits: blocked on ranks that already terminated (or on
        # nobody at all).  Walk the chains back to the root causes.
        roots = [r for r, (targets, _, _, _) in blocked.items()
                 if not any(t in blocked for t in targets)]
        for rank in sorted(roots):
            targets, desc, line, col = blocked[rank]
            st = self._ranks[rank]
            kind, detail = st.blocked
            if kind == "coll":
                comm, slot, op = detail
                arrivals = self._coll_arrivals.get((comm, slot), {})
                missing = sorted(set(op.members) - set(arrivals))
                if (comm, slot) not in self._coll_reported:
                    self._coll_reported.add((comm, slot))
                    self.emit(
                        "RPD520",
                        f"rank {rank} blocks in {op.name} but rank(s) "
                        f"{missing} finish without reaching this "
                        f"collective",
                        hint="every rank of the communicator must reach "
                             "the same collectives in the same order",
                        line=line, col=col)
                continue
            if desc.startswith("send"):
                self.emit(
                    "RPD501",
                    f"rank {rank} blocks in {desc}: the destination "
                    f"terminates without posting a matching receive",
                    hint="add the matching recv, or make the tags/"
                         "communicators agree",
                    line=line, col=col)
            else:
                self.emit(
                    "RPD502",
                    f"rank {rank} blocks in {desc}: no matching send is "
                    f"ever posted by the source rank(s)",
                    hint="add the matching send, or make the tags/"
                         "communicators agree",
                    line=line, col=col)

    def _report_leftovers(self) -> None:
        """Unmatched nonblocking traffic after every rank terminated."""
        by_site: dict[tuple, list[P2POp]] = {}
        for op in self._pending_sends + self._pending_recvs:
            if op.escaped:
                continue
            by_site.setdefault((op.kind, op.line, op.col), []).append(op)
        for (kind, line, col), ops in sorted(by_site.items()):
            ranks = sorted({op.rank for op in ops})
            op = ops[0]
            if kind == "send":
                self.emit(
                    "RPD501",
                    f"{op.describe()} posted by rank(s) {ranks} is never "
                    f"received: no rank posts a matching receive",
                    hint="add the matching recv, or make the tags/"
                         "communicators agree",
                    line=line, col=col)
            else:
                self.emit(
                    "RPD502",
                    f"{op.describe()} posted by rank(s) {ranks} can never "
                    f"be matched: no rank posts a matching send",
                    hint="add the matching send, or make the tags/"
                         "communicators agree",
                    line=line, col=col)

    # -- entry point ----------------------------------------------------

    def run(self) -> list[Diagnostic]:
        while self._advance():
            pass
        if all(st.done for st in self._ranks.values()):
            self._report_leftovers()
        else:
            self._report_stuck()
        return self.diags


def _find_cycle(edges: dict) -> Optional[list]:
    """First cycle in a small digraph, as the list of nodes on it."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {n: WHITE for n in edges}
    stack: list = []

    def visit(node):
        color[node] = GRAY
        stack.append(node)
        for succ in edges.get(node, ()):
            if succ not in color:
                continue
            if color[succ] == GRAY:
                return stack[stack.index(succ):]
            if color[succ] == WHITE:
                found = visit(succ)
                if found:
                    return found
        stack.pop()
        color[node] = BLACK
        return None

    for node in sorted(edges):
        if color[node] == WHITE:
            found = visit(node)
            if found:
                return found
    return None


def replay(traces: dict, path: Optional[str] = None,
           context: str = "") -> list[Diagnostic]:
    """Match one trace set; convenience wrapper over :class:`TraceReplay`."""
    return TraceReplay(traces, path=path, context=context).run()
