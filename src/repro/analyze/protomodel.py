"""Bounded model checking of the wire protocol (RPD7xx).

The fabric's protocol logic — eager/rendezvous handshakes, the CRC+seq
ACK/NACK retransmission layer, ULFM failure transitions, buffer-pool
ownership — is exercised by the test suite only under the interleavings the
threaded transport happens to produce.  This module checks it under *all*
interleavings (up to a depth bound): the protocol is restated as an explicit
state machine over a small spec IR, and a breadth-first checker exhaustively
explores every schedule of protocol and fault actions at 2–4 ranks.

The decisions the machine takes (protocol selection, CRC acceptance,
duplicate suppression, retry budgeting, failure propagation) are **not**
re-implemented here: the shipped :class:`TransitionTable` delegates every
one of them to :mod:`repro.ucp.transitions`, the same pure functions the
live fabric executes.  A clean model-check therefore certifies the decision
table the implementation actually runs, and the seeded mutant corpus
(:data:`MUTANT_CORPUS`) proves each RPD7xx detection channel fires when one
decision is broken.

Spec IR
-------
* :class:`MsgSpec` / :class:`Scenario` — per-rank endpoints, the message
  set (with byte sizes, so protocol selection is real), the enabled fault
  actions and their budget, the reliability configuration.
* model state — an immutable tuple of per-message records (phase,
  retransmission round, delivery count, staging/bounce buffer ownership,
  failure flags), per-rank records (alive/finished) and global fault and
  pool-misuse counters.  States hash, so the checker deduplicates.

Checked invariants (diagnostics):

* RPD700 — protocol deadlock: a quiescent state with unfinished live ranks
  (the full action trace is attached as evidence),
* RPD701 — lost message: a send completed locally, the payload was never
  delivered, and no failure was reported anywhere,
* RPD702 — delivery the seq/CRC layer must suppress (a duplicate or a
  corrupted payload) reached the application under reliability,
* RPD703 — pool-buffer leak at job end, or a double-recycle along any path,
* RPD704 — ULFM violation: an operation completed successfully after its
  peer crashed, without ``MPI_ERR_PROC_FAILED``,
* RPD710 — retry-budget divergence: a retransmission loop ran past the
  configured progress bound.

State-space control: state hashing (visited set), per-rank program order on
sends and receive posts, a total fault budget, and a sound partial-order
reduction that expands deterministic *local* completions (failure
detections, rank finishes) alone — they commute with every other enabled
action and touch disjoint records, so no interleaving is lost.
"""

from __future__ import annotations

import time
from collections import deque, namedtuple
from dataclasses import dataclass, field, replace
from typing import Optional

from ..ucp import transitions
from .diagnostics import Diagnostic

__all__ = [
    "MsgSpec", "Scenario", "TransitionTable", "ModelReport", "Mutant",
    "MUTANT_CORPUS", "builtin_scenarios", "check_scenario", "verify_shipped",
    "run_mutant_corpus", "classify_protocol",
]

# Message phases.
IDLE = 0          # not yet sent
FLIGHT = 1        # injected; at the destination matcher (or on the wire)
NEED_RETRY = 2    # NACKed / seq gap: waiting for the retransmission timer
DELIVERED = 3     # payload moved into the receive buffer
EXHAUSTED = 4     # retry budget spent; poisoned envelope pending
LOST = 5          # gone for good (unreliable drop, crash, silent mutant)
CANCELLED = 6     # withdrawn by MPI_Cancel

_PHASE_NAMES = {IDLE: "idle", FLIGHT: "flight", NEED_RETRY: "need-retry",
                DELIVERED: "delivered", EXHAUSTED: "exhausted",
                LOST: "lost", CANCELLED: "cancelled"}

#: Terminal phases for the FIFO (non-overtaking) delivery rule.
_TERMINAL = (DELIVERED, LOST, CANCELLED)

# One message's record.  round = retransmission rounds used; deliv =
# payload deliveries; bufs/rbuf = sender staging / receiver bounce buffers
# outstanding; reported = the failure was surfaced somewhere (sanitizer
# code, raised error, crash record) — the negation feeds RPD701.
MS = namedtuple("MS", "phase round deliv corrupt dup held bufs rbuf "
                      "s_done s_err posted r_done r_err reported")
# One rank's record.
RS = namedtuple("RS", "alive finished")
# Global state: message records, rank records, fault-budget use and the
# count of pool releases that had no matching acquire (double recycles).
GS = namedtuple("GS", "msgs ranks faults_used recycle_errors")


@dataclass(frozen=True)
class MsgSpec:
    """One point-to-point message of a scenario."""

    mid: int
    src: int
    dst: int
    nbytes: int = 1024
    #: False models a fire-and-forget send the receiver never posts for
    #: (the cancel scenarios); RPD701 does not apply to it.
    expect_recv: bool = True
    #: The sender's program cancels this message (MPI_Cancel) before
    #: finishing; the model explores the cancel at every legal point.
    may_cancel: bool = False


@dataclass(frozen=True)
class Scenario:
    """A bounded protocol workload: ranks, messages, faults, reliability."""

    name: str
    nranks: int
    messages: tuple
    reliability: bool = False
    retry_limit: int = 2
    #: Enabled fault actions: subset of
    #: {"drop", "corrupt", "duplicate", "reorder", "crash"}.
    faults: frozenset = frozenset()
    #: Total fault actions allowed along any one path (bounds the space).
    fault_budget: int = 1
    #: Ranks the crash action may kill.
    crash_ranks: frozenset = frozenset()
    eager_limit: int = 32 * 1024

    def describe(self) -> str:
        f = ",".join(sorted(self.faults)) or "none"
        return (f"{self.name}: {self.nranks} ranks, "
                f"{len(self.messages)} msgs, faults={f}, "
                f"reliability={'on' if self.reliability else 'off'}")


def classify_protocol(spec: MsgSpec, scenario: Scenario) -> str:
    """Protocol of a scenario message — via the shared transition table."""
    return transitions.select_protocol("contig", spec.nbytes,
                                       scenario.eager_limit)


# ---------------------------------------------------------------------------
# the transition table (shipped = delegates to repro.ucp.transitions)
# ---------------------------------------------------------------------------

class TransitionTable:
    """The protocol's decision table as the model consumes it.

    Every method of the shipped table delegates to the pure functions in
    :mod:`repro.ucp.transitions` that the live fabric executes, so model
    and implementation share one table.  Mutants subclass and break exactly
    one decision.
    """

    name = "shipped"
    #: For mutants: what was broken (evidence text).
    mutation = ""

    def protocol_for(self, spec: MsgSpec, scenario: Scenario) -> str:
        return transitions.select_protocol("contig", spec.nbytes,
                                           scenario.eager_limit)

    # -- integrity / sequencing -------------------------------------------

    def crc_rejects(self, corrupt: bool) -> bool:
        """Receiver-side CRC verdict for the (abstract) payload."""
        expected = (0x600D,)
        actual = (0x0BAD,) if corrupt else (0x600D,)
        return bool(transitions.crc_reject(expected, actual))

    def ack_respects_crc(self) -> bool:
        """ACK only after the CRC verdict (the shipped ordering)."""
        return True

    def duplicate_suppressed(self, reliability: bool, seq: int,
                             delivered_seqs) -> bool:
        return transitions.duplicate_suppressed(reliability, seq,
                                                delivered_seqs)

    # -- retry budgeting ----------------------------------------------------

    def retry_exhausted(self, rounds_used: int, retry_limit: int) -> bool:
        return transitions.retry_exhausted(rounds_used, retry_limit)

    # -- failure propagation ------------------------------------------------

    def exhaustion_reports_failure(self) -> bool:
        return transitions.exhaustion_reports_failure()

    def crash_reports_failure(self) -> bool:
        return transitions.crash_observed_reports_failure()

    def loss_reported(self) -> bool:
        return transitions.loss_is_reported_without_reliability()

    # -- buffer ownership ---------------------------------------------------

    def staging_released_at_send(self) -> bool:
        """Early recycle of eager staging (before delivery consumed it) —
        always False in the shipped protocol."""
        return not transitions.cancel_releases_staging_once() or False

    def cancel_idempotent(self) -> bool:
        return transitions.cancel_releases_staging_once()

    # -- reordering ---------------------------------------------------------

    def reorder_flushes(self) -> bool:
        """A reorder-held message is flushed once its successor transmitted
        (and at rank finish) — never silently kept."""
        return True


# ---------------------------------------------------------------------------
# state helpers
# ---------------------------------------------------------------------------

def _initial_state(scn: Scenario) -> GS:
    msgs = tuple(MS(phase=IDLE, round=0, deliv=0, corrupt=False, dup=False,
                    held=False, bufs=0, rbuf=0, s_done=False, s_err=False,
                    posted=False, r_done=False, r_err=False, reported=False)
                 for _ in scn.messages)
    ranks = tuple(RS(alive=True, finished=False)
                  for _ in range(scn.nranks))
    return GS(msgs=msgs, ranks=ranks, faults_used=0, recycle_errors=0)


def _set_msg(st: GS, i: int, ms: MS) -> GS:
    msgs = st.msgs[:i] + (ms,) + st.msgs[i + 1:]
    return st._replace(msgs=msgs)


def _release(st: GS, i: int, which: str) -> GS:
    """Return one staging (``bufs``) or bounce (``rbuf``) buffer to the
    pool; a release without a matching acquire is a double recycle."""
    ms = st.msgs[i]
    n = getattr(ms, which)
    if n <= 0:
        return _set_msg(st, i, ms)._replace(
            recycle_errors=st.recycle_errors + 1)
    return _set_msg(st, i, ms._replace(**{which: n - 1}))


def _channel_predecessors(scn: Scenario, i: int):
    """Indices of earlier messages on the same (src, dst) channel."""
    m = scn.messages[i]
    return [j for j, o in enumerate(scn.messages)
            if j < i and o.src == m.src and o.dst == m.dst]


def _channel_successors(scn: Scenario, i: int):
    m = scn.messages[i]
    return [j for j, o in enumerate(scn.messages)
            if j > i and o.src == m.src and o.dst == m.dst]


def _fifo_ready(scn: Scenario, st: GS, i: int) -> bool:
    """The non-overtaking rule: a message delivers only after every earlier
    message on its channel is out of the way.  Without the reliability
    protocol a reorder-held predecessor may be overtaken (that is the
    fault); with it the sequencing layer heals the order, so held
    predecessors still block."""
    for j in _channel_predecessors(scn, i):
        pj = st.msgs[j]
        if pj.phase in _TERMINAL or (pj.phase == EXHAUSTED and pj.r_done):
            continue
        if pj.held and not scn.reliability:
            continue
        return False
    return True


# ---------------------------------------------------------------------------
# action enumeration
# ---------------------------------------------------------------------------

def _enabled(scn: Scenario, st: GS, table: TransitionTable):
    """Yield ``(label, successor_state, local)`` for every enabled action.

    ``local`` marks deterministic completions that commute with every other
    enabled action (the partial-order-reduction ample set).
    """
    out = []
    msgs, ranks = st.msgs, st.ranks
    budget_left = st.faults_used < scn.fault_budget

    for i, spec in enumerate(scn.messages):
        ms = msgs[i]
        proto = table.protocol_for(spec, scn)
        eager = not transitions.protocol_is_rndv(proto)
        src_alive = ranks[spec.src].alive
        dst_alive = ranks[spec.dst].alive

        # -- post_recv: receiver posts, program order per rank ----------
        if (spec.expect_recv and not ms.posted and dst_alive
                and all(msgs[j].posted for j, o in enumerate(scn.messages)
                        if j < i and o.dst == spec.dst and o.expect_recv)):
            nst = _set_msg(st, i, ms._replace(posted=True,
                                              rbuf=ms.rbuf + 1))
            out.append((f"post_recv(m{spec.mid})", nst, False))

        # -- send: program order per sending rank ------------------------
        if (ms.phase == IDLE and src_alive
                and all(msgs[j].phase != IDLE
                        for j, o in enumerate(scn.messages)
                        if j < i and o.src == spec.src)):
            ns = ms._replace(phase=FLIGHT)
            if eager:
                # Eager copies through pool staging and completes locally.
                ns = ns._replace(bufs=ms.bufs + 1, s_done=True)
            nst = _set_msg(st, i, ns)
            if eager and table.staging_released_at_send():
                # recycle-before-ack mutant: the staging chunk goes back to
                # the pool while the wire still references it.
                nst = _release(nst, i, "bufs")
            out.append((f"send(m{spec.mid},{proto})", nst, False))

        # -- deliver / nack / poisoned-envelope ---------------------------
        if (ms.phase == FLIGHT and ms.posted and not ms.r_done
                and not ms.held and dst_alive and _fifo_ready(scn, st, i)):
            rejected = table.crc_rejects(ms.corrupt)
            if rejected and table.ack_respects_crc():
                if scn.reliability:
                    # NACK: the receiver asks for the fragments again.
                    nst = _set_msg(st, i, ms._replace(phase=NEED_RETRY))
                    out.append((f"nack(m{spec.mid})", nst, False))
                else:
                    # No recovery layer: the corrupted payload is delivered
                    # and the CRC mismatch *reported* (RPD451).
                    ns = ms._replace(phase=DELIVERED, deliv=ms.deliv + 1,
                                     r_done=True, s_done=True,
                                     reported=True)
                    nst = _set_msg(st, i, ns)
                    nst = _release(nst, i, "rbuf")
                    if eager:
                        nst = _release(nst, i, "bufs")
                    out.append((f"deliver(m{spec.mid},corrupt)", nst,
                                False))
            else:
                # Clean delivery — or the ack-before-crc mutant acking a
                # corrupted payload.  Rendezvous completes the sender here.
                ns = ms._replace(phase=DELIVERED, deliv=ms.deliv + 1,
                                 r_done=True, s_done=True)
                nst = _set_msg(st, i, ns)
                nst = _release(nst, i, "rbuf")
                if eager:
                    nst = _release(nst, i, "bufs")
                out.append((f"deliver(m{spec.mid})", nst, False))

        if ms.phase == EXHAUSTED and ms.posted and not ms.r_done:
            # The poisoned envelope: the wait terminates with
            # MPI_ERR_PROC_FAILED instead of the data.
            ns = ms._replace(r_done=True, r_err=True)
            nst = _release(_set_msg(st, i, ns), i, "rbuf")
            out.append((f"deliver(m{spec.mid},poisoned)", nst, True))

        # -- duplicate consumption ---------------------------------------
        if ms.dup and ms.phase == DELIVERED:
            if table.duplicate_suppressed(scn.reliability, spec.mid,
                                          (spec.mid,)):
                nst = _set_msg(st, i, ms._replace(dup=False))
                out.append((f"dup_dropped(m{spec.mid})", nst, True))
            elif scn.reliability:
                # The sequencing layer failed to suppress: double delivery.
                ns = ms._replace(dup=False, deliv=ms.deliv + 1)
                out.append((f"deliver(m{spec.mid},dup)",
                            _set_msg(st, i, ns), False))
            else:
                # No sequencing layer: the clone sits in the unexpected
                # queue until the end-of-job sweep (RPD421 in live runs).
                nst = _set_msg(st, i, ms._replace(dup=False))
                out.append((f"dup_unclaimed(m{spec.mid})", nst, True))

        # -- timeout + retransmit / exhaust -------------------------------
        if ms.phase == NEED_RETRY and src_alive:
            if not table.retry_exhausted(ms.round, scn.retry_limit):
                ns = ms._replace(phase=FLIGHT, round=ms.round + 1,
                                 corrupt=False)
                out.append((f"retransmit(m{spec.mid},round{ms.round + 1})",
                            _set_msg(st, i, ns), False))
            else:
                if table.exhaustion_reports_failure():
                    # Both ends learn: the sender raises (rendezvous) or
                    # records RPD452 (eager), the receiver's envelope is
                    # poisoned.
                    ns = ms._replace(phase=EXHAUSTED, reported=True,
                                     s_done=True,
                                     s_err=not eager or ms.s_err)
                else:
                    # silent-exhaustion mutant: the transfer just stops.
                    ns = ms._replace(phase=LOST, s_done=True)
                nst = _set_msg(st, i, ns)
                if eager:
                    nst = _release(nst, i, "bufs")
                out.append((f"exhaust(m{spec.mid})", nst, False))

        # -- cancel -------------------------------------------------------
        can_cancel = (spec.may_cancel and ms.phase == FLIGHT
                      and not ms.posted and src_alive)
        if can_cancel:
            ns = ms._replace(phase=CANCELLED, s_done=True)
            nst = _release(_set_msg(st, i, ns), i, "bufs")
            out.append((f"cancel(m{spec.mid})", nst, False))
        if (spec.may_cancel and ms.phase == CANCELLED
                and not table.cancel_idempotent()):
            # double-cancel mutant: the second cancel recycles again.
            nst = _release(st, i, "bufs")
            out.append((f"cancel(m{spec.mid},again)", nst, False))

        # -- ULFM detection ----------------------------------------------
        # A blocked rendezvous sender whose peer died.
        if (not eager and not ms.s_done and not dst_alive
                and ms.phase in (FLIGHT, NEED_RETRY, IDLE)
                and src_alive):
            ok = table.crash_reports_failure()
            ns = ms._replace(s_done=True, s_err=ok, phase=LOST,
                             reported=ms.reported or ok)
            nst = _set_msg(st, i, ns)
            if eager:
                nst = _release(nst, i, "bufs")
            out.append((f"detect(m{spec.mid},sender)", nst, True))
        # A blocked receiver whose message can no longer arrive: the
        # sender crashed before injecting, or the message was lost and the
        # sender is gone/finished (FailureDetector.check_hopeless).
        if ms.posted and not ms.r_done and dst_alive:
            hopeless = False
            if not src_alive and ms.phase in (IDLE, NEED_RETRY, LOST):
                hopeless = True
            if (ms.phase == LOST
                    and (ranks[spec.src].finished or not src_alive)):
                hopeless = True
            if hopeless:
                ok = table.crash_reports_failure()
                ns = ms._replace(r_done=True, r_err=ok,
                                 phase=LOST if ms.phase != LOST
                                 else ms.phase)
                nst = _release(_set_msg(st, i, ns), i, "rbuf")
                out.append((f"detect(m{spec.mid},recv)", nst, True))

        # -- fault actions ------------------------------------------------
        if budget_left and ms.phase == FLIGHT and not ms.held:
            charged = st.faults_used + 1
            if "drop" in scn.faults:
                if scn.reliability:
                    ns = ms._replace(phase=NEED_RETRY)
                    nst = _set_msg(st, i, ns)._replace(faults_used=charged)
                else:
                    reported = table.loss_reported()
                    ns = ms._replace(phase=LOST, reported=reported,
                                     s_done=True,
                                     s_err=(not eager and reported))
                    nst = _set_msg(st, i, ns)._replace(faults_used=charged)
                    if eager:
                        nst = _release(nst, i, "bufs")
                out.append((f"drop(m{spec.mid})", nst, False))
            if "corrupt" in scn.faults and not ms.corrupt:
                ns = ms._replace(corrupt=True)
                nst = _set_msg(st, i, ns)._replace(faults_used=charged)
                out.append((f"corrupt(m{spec.mid})", nst, False))
            if "duplicate" in scn.faults and not ms.dup:
                ns = ms._replace(dup=True)
                nst = _set_msg(st, i, ns)._replace(faults_used=charged)
                out.append((f"duplicate(m{spec.mid})", nst, False))
            if ("reorder" in scn.faults
                    and any(msgs[j].phase == IDLE
                            for j in _channel_successors(scn, i))):
                ns = ms._replace(held=True)
                nst = _set_msg(st, i, ns)._replace(faults_used=charged)
                out.append((f"reorder(m{spec.mid})", nst, False))

        # -- reorder flush ------------------------------------------------
        if (ms.held and table.reorder_flushes()
                and any(msgs[j].phase != IDLE
                        for j in _channel_successors(scn, i))):
            nst = _set_msg(st, i, ms._replace(held=False))
            out.append((f"flush(m{spec.mid})", nst, True))

    # -- crash --------------------------------------------------------------
    if "crash" in scn.faults and budget_left:
        for r in sorted(scn.crash_ranks):
            if not ranks[r].alive:
                continue
            nst = st._replace(
                ranks=ranks[:r] + (ranks[r]._replace(alive=False),)
                + ranks[r + 1:],
                faults_used=st.faults_used + 1)
            # The crashed rank's reorder-held messages die with it
            # (FaultInjector.drop_rank); its staging is torn down.
            for i, spec in enumerate(scn.messages):
                ms = nst.msgs[i]
                if spec.src == r and ms.held:
                    nst = _set_msg(nst, i,
                                   ms._replace(held=False, phase=LOST,
                                               reported=True))
                    nst = _release(nst, i, "bufs")
            out.append((f"crash(rank{r})", nst, False))

    # -- finish -------------------------------------------------------------
    for r in range(scn.nranks):
        rs = ranks[r]
        if not rs.alive or rs.finished:
            continue
        done = True
        for i, spec in enumerate(scn.messages):
            ms = msgs[i]
            if spec.src == r:
                if not ms.s_done:
                    done = False
                if spec.may_cancel and ms.phase not in (CANCELLED,
                                                        DELIVERED):
                    done = False  # the program always attempts the cancel
            if spec.dst == r and spec.expect_recv and not ms.r_done:
                done = False
        if not done:
            continue
        nst = st._replace(ranks=ranks[:r] + (rs._replace(finished=True),)
                          + ranks[r + 1:])
        flushed = False
        if table.reorder_flushes():
            # flush_rank: a returning rank deposits everything it held.
            for i, spec in enumerate(scn.messages):
                if spec.src == r and nst.msgs[i].held:
                    nst = _set_msg(nst, i,
                                   nst.msgs[i]._replace(held=False))
                    flushed = True
        crash_possible = "crash" in scn.faults and r in scn.crash_ranks \
            and budget_left
        out.append((f"finish(rank{r})", nst,
                    not flushed and not crash_possible))
    return out


# ---------------------------------------------------------------------------
# invariant checks
# ---------------------------------------------------------------------------

def _state_violations(scn: Scenario, st: GS, table: TransitionTable):
    """Monotone invariants checkable on any state."""
    out = []
    for i, spec in enumerate(scn.messages):
        ms = st.msgs[i]
        if ms.deliv > 1:
            out.append(("RPD702",
                        f"message m{spec.mid} ({spec.src}->{spec.dst}) was "
                        f"delivered {ms.deliv} times; the sequencing layer "
                        f"must suppress duplicates past the seq/CRC check"))
        if scn.reliability and ms.phase == DELIVERED and ms.corrupt \
                and ms.deliv > 0:
            out.append(("RPD702",
                        f"corrupted payload of m{spec.mid} "
                        f"({spec.src}->{spec.dst}) was acknowledged and "
                        f"delivered under the reliability protocol; the "
                        f"CRC check must run before the ACK"))
        if ms.round > scn.retry_limit:
            out.append(("RPD710",
                        f"message m{spec.mid} ({spec.src}->{spec.dst}) "
                        f"entered retransmission round {ms.round} past the "
                        f"retry budget of {scn.retry_limit}; the "
                        f"retransmission loop has no progress bound"))
    if st.recycle_errors:
        out.append(("RPD703",
                    f"{st.recycle_errors} pool release(s) had no matching "
                    f"acquire (double recycle): a buffer the pool already "
                    f"handed to a new owner was returned again"))
    return out


def _terminal_violations(scn: Scenario, st: GS, table: TransitionTable):
    """Invariants of quiescent states."""
    out = []
    final = all(rs.finished or not rs.alive for rs in st.ranks)
    if not final:
        stuck = [r for r, rs in enumerate(st.ranks)
                 if rs.alive and not rs.finished]
        out.append(("RPD700",
                    f"quiescent non-final state: rank(s) "
                    f"{','.join(map(str, stuck))} can never finish "
                    f"(no protocol action is enabled)"))
    for i, spec in enumerate(scn.messages):
        ms = st.msgs[i]
        proto = table.protocol_for(spec, scn)
        rndv = transitions.protocol_is_rndv(proto)
        dst_alive = st.ranks[spec.dst].alive
        src_alive = st.ranks[spec.src].alive
        if (spec.expect_recv and ms.s_done and not ms.s_err
                and ms.deliv == 0 and not ms.reported
                and ms.phase != CANCELLED and dst_alive and src_alive):
            out.append(("RPD701",
                        f"message m{spec.mid} ({spec.src}->{spec.dst}, "
                        f"{proto}): the send completed locally but the "
                        f"payload was never delivered and no failure was "
                        f"reported anywhere"))
        # Crashed ranks take their pools down with them — teardown, not
        # a leak — so ownership is only checked for live endpoints.
        if ms.bufs != 0 and src_alive and not (ms.phase == FLIGHT
                                               and not spec.expect_recv):
            out.append(("RPD703",
                        f"message m{spec.mid} ({spec.src}->{spec.dst}) "
                        f"ends the job with {ms.bufs} staging buffer(s) "
                        f"still outstanding in the sender's pool "
                        f"[{_PHASE_NAMES[ms.phase]}]"))
        if ms.rbuf != 0 and ms.r_done and dst_alive:
            out.append(("RPD703",
                        f"message m{spec.mid} ({spec.src}->{spec.dst}) "
                        f"completed its receive but leaked {ms.rbuf} "
                        f"bounce buffer(s)"))
        if (rndv and ms.s_done and not ms.s_err and ms.deliv == 0
                and not dst_alive):
            out.append(("RPD704",
                        f"rendezvous send m{spec.mid} to crashed rank "
                        f"{spec.dst} completed successfully without "
                        f"MPI_ERR_PROC_FAILED"))
        if (ms.r_done and not ms.r_err and ms.deliv == 0
                and not src_alive):
            out.append(("RPD704",
                        f"receive of m{spec.mid} from crashed rank "
                        f"{spec.src} completed successfully without "
                        f"MPI_ERR_PROC_FAILED"))
    return out


# ---------------------------------------------------------------------------
# the checker
# ---------------------------------------------------------------------------

@dataclass
class ScenarioResult:
    """Exploration outcome of one scenario under one table."""

    scenario: Scenario
    table_name: str
    states: int = 0
    transitions: int = 0
    max_depth: int = 0
    truncated: int = 0           # states cut off by the depth bound
    elapsed: float = 0.0
    diagnostics: list = field(default_factory=list)
    #: code -> shortest action trace exhibiting it.
    traces: dict = field(default_factory=dict)

    @property
    def states_per_s(self) -> float:
        return self.states / self.elapsed if self.elapsed > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario.name,
            "table": self.table_name,
            "states": self.states,
            "transitions": self.transitions,
            "max_depth": self.max_depth,
            "truncated": self.truncated,
            "elapsed_s": self.elapsed,
            "states_per_s": self.states_per_s,
            "codes": sorted({d.code for d in self.diagnostics}),
            "traces": {c: list(t) for c, t in sorted(self.traces.items())},
        }


@dataclass
class ModelReport:
    """Aggregated model-check report over a scenario set."""

    results: list = field(default_factory=list)

    @property
    def diagnostics(self) -> list:
        return [d for r in self.results for d in r.diagnostics]

    @property
    def states(self) -> int:
        return sum(r.states for r in self.results)

    @property
    def elapsed(self) -> float:
        return sum(r.elapsed for r in self.results)

    @property
    def states_per_s(self) -> float:
        return self.states / self.elapsed if self.elapsed > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "states": self.states,
            "elapsed_s": self.elapsed,
            "states_per_s": self.states_per_s,
            "scenarios": [r.to_dict() for r in self.results],
        }


def _trace(parent: dict, state: GS) -> tuple:
    """Reconstruct the action trace leading to ``state``."""
    steps = []
    cur = state
    while True:
        entry = parent.get(cur)
        if entry is None:
            break
        cur, label = entry
        steps.append(label)
    return tuple(reversed(steps))


def check_scenario(scn: Scenario, table: Optional[TransitionTable] = None,
                   depth: int = 60, max_states: int = 200_000,
                   por: bool = True) -> ScenarioResult:
    """Exhaustively explore one scenario's interleavings.

    BFS over the state graph with a visited set (state hashing), a depth
    bound and a state-count safety valve.  Each diagnostic code is emitted
    once per scenario with the shortest exhibiting action trace (BFS order
    guarantees minimality).
    """
    table = table or TransitionTable()
    res = ScenarioResult(scenario=scn, table_name=table.name)
    t0 = time.perf_counter()

    init = _initial_state(scn)
    parent: dict = {init: None}
    frontier = deque([(init, 0)])
    seen = {init}
    reported: set = set()

    def emit(code: str, message: str, state: GS) -> None:
        if code in reported:
            return
        reported.add(code)
        tr = _trace(parent, state)
        hint = ""
        if table.mutation:
            hint = f"protocol mutant '{table.name}': {table.mutation}"
        evidence = " ; ".join(tr) if tr else "<initial state>"
        res.diagnostics.append(Diagnostic(
            code, f"[{scn.name}] {message} (trace: {evidence})",
            hint=hint, subject=scn.name))
        res.traces[code] = tr

    while frontier:
        state, d = frontier.popleft()
        res.states += 1
        res.max_depth = max(res.max_depth, d)
        if res.states > max_states:
            res.truncated += len(frontier)
            break

        for code, message in _state_violations(scn, state, table):
            emit(code, message, state)

        actions = _enabled(scn, state, table)
        if not actions:
            for code, message in _terminal_violations(scn, state, table):
                emit(code, message, state)
            continue
        if d >= depth:
            res.truncated += 1
            continue

        if por:
            # Ample set: a deterministic local completion commutes with
            # every other enabled action (disjoint records, never disabled
            # by others), so exploring it first alone is sound.
            local = [a for a in actions if a[2]]
            if local:
                actions = local[:1]

        for label, succ, _ in actions:
            res.transitions += 1
            if succ in seen:
                continue
            seen.add(succ)
            parent[succ] = (state, label)
            frontier.append((succ, d + 1))

    res.elapsed = time.perf_counter() - t0
    res.diagnostics = list(res.diagnostics)
    return res


# ---------------------------------------------------------------------------
# the shipped scenario matrix
# ---------------------------------------------------------------------------

def builtin_scenarios(nranks: int = 3,
                      fault_kinds: Optional[frozenset] = None,
                      eager_limit: int = 32 * 1024) -> list[Scenario]:
    """The scenario matrix ``repro-analyze proto`` model-checks.

    ``fault_kinds`` restricts which fault actions appear (None = all).
    Message sizes are chosen around ``eager_limit`` so both protocol
    families are exercised, including the exact boundary.
    """
    nranks = max(2, min(4, nranks))
    kinds = fault_kinds if fault_kinds is not None else frozenset(
        {"drop", "corrupt", "duplicate", "reorder", "crash"})
    small, boundary, big = 1024, eager_limit, eager_limit * 2

    def msgs(*triples):
        return tuple(MsgSpec(mid=k, src=s, dst=d, nbytes=n, **kw)
                     for k, (s, d, n, kw) in enumerate(
                         (t if len(t) == 4 else (*t, {}))
                         for t in triples))

    ring = msgs(*(((r, (r + 1) % nranks, small if r % 2 else big))
                  for r in range(nranks)))
    pair2 = msgs((0, 1, small), (0, 1, small))
    out = [
        Scenario("clean-ring", nranks, ring, eager_limit=eager_limit),
        Scenario("eager-boundary", 2,
                 msgs((0, 1, boundary), (1, 0, boundary + 1)),
                 eager_limit=eager_limit),
        Scenario("cancel", 2,
                 msgs((0, 1, small,
                       {"expect_recv": False, "may_cancel": True}),
                      (1, 0, small)),
                 eager_limit=eager_limit),
    ]
    if "drop" in kinds:
        out.append(Scenario("drop-reliable", nranks, ring,
                            reliability=True, retry_limit=2,
                            faults=frozenset({"drop"}), fault_budget=2,
                            eager_limit=eager_limit))
        out.append(Scenario("drop-exhaust", 2,
                            msgs((0, 1, small), (1, 0, big)),
                            reliability=True, retry_limit=1,
                            faults=frozenset({"drop"}), fault_budget=2,
                            eager_limit=eager_limit))
        out.append(Scenario("drop-lossy", 2,
                            msgs((0, 1, small), (1, 0, big)),
                            faults=frozenset({"drop"}), fault_budget=1,
                            eager_limit=eager_limit))
    if "corrupt" in kinds:
        out.append(Scenario("corrupt-reliable", 2,
                            msgs((0, 1, small), (1, 0, big)),
                            reliability=True, retry_limit=2,
                            faults=frozenset({"corrupt"}), fault_budget=2,
                            eager_limit=eager_limit))
        out.append(Scenario("corrupt-lossy", 2, msgs((0, 1, small)),
                            faults=frozenset({"corrupt"}), fault_budget=1,
                            eager_limit=eager_limit))
    if "duplicate" in kinds:
        out.append(Scenario("dup-reliable", 2, pair2,
                            reliability=True,
                            faults=frozenset({"duplicate"}),
                            fault_budget=2, eager_limit=eager_limit))
        out.append(Scenario("dup-lossy", 2, pair2,
                            faults=frozenset({"duplicate"}),
                            fault_budget=1, eager_limit=eager_limit))
    if "reorder" in kinds:
        out.append(Scenario("reorder-chain", 2, pair2,
                            reliability=True,
                            faults=frozenset({"reorder"}), fault_budget=1,
                            eager_limit=eager_limit))
        out.append(Scenario("reorder-lossy", 2, pair2,
                            faults=frozenset({"reorder"}), fault_budget=1,
                            eager_limit=eager_limit))
    if "crash" in kinds:
        out.append(Scenario("crash", nranks, ring,
                            faults=frozenset({"crash"}), fault_budget=1,
                            crash_ranks=frozenset({1}),
                            eager_limit=eager_limit))
        if "drop" in kinds:
            out.append(Scenario("crash-reliable", 2,
                                msgs((0, 1, big), (1, 0, small)),
                                reliability=True, retry_limit=1,
                                faults=frozenset({"crash", "drop"}),
                                fault_budget=2,
                                crash_ranks=frozenset({1}),
                                eager_limit=eager_limit))
    return out


def verify_shipped(nranks: int = 3, depth: int = 60,
                   fault_kinds: Optional[frozenset] = None,
                   max_states: int = 200_000, por: bool = True
                   ) -> ModelReport:
    """Model-check the shipped transition table over the builtin matrix."""
    report = ModelReport()
    table = TransitionTable()
    for scn in builtin_scenarios(nranks, fault_kinds):
        report.results.append(
            check_scenario(scn, table, depth=depth, max_states=max_states,
                           por=por))
    return report


# ---------------------------------------------------------------------------
# the protocol-mutant corpus
# ---------------------------------------------------------------------------

class _AckBeforeCrc(TransitionTable):
    name = "ack-before-crc"
    mutation = ("the receiver acknowledges fragments before verifying "
                "their CRCs, so corrupted payloads are acked and delivered")

    def ack_respects_crc(self):
        return False


class _SeqWindowOffByOne(TransitionTable):
    name = "seq-window-off-by-one"
    mutation = ("duplicate suppression uses a strict comparison, so a "
                "duplicate of the newest delivered seq is re-delivered")

    def duplicate_suppressed(self, reliability, seq, delivered_seqs):
        return reliability and any(s < seq for s in delivered_seqs)


class _RecycleBeforeAck(TransitionTable):
    name = "recycle-before-ack"
    mutation = ("the sender recycles eager staging at injection, before "
                "delivery consumed it; the delivery-path release then "
                "double-recycles")

    def staging_released_at_send(self):
        return True


class _MissingProcFailed(TransitionTable):
    name = "missing-proc-failed"
    mutation = ("a wait that observes a peer crash completes successfully "
                "instead of raising MPI_ERR_PROC_FAILED")

    def crash_reports_failure(self):
        return False


class _SilentExhaustion(TransitionTable):
    name = "silent-exhaustion"
    mutation = ("a spent retry budget abandons the transfer without "
                "reporting the failure at either end")

    def exhaustion_reports_failure(self):
        return False


class _RetryWithoutBudget(TransitionTable):
    name = "retry-without-budget"
    mutation = "the retransmission loop never consults the retry budget"

    def retry_exhausted(self, rounds_used, retry_limit):
        return False


class _DropHeldReorder(TransitionTable):
    name = "drop-held-reorder"
    mutation = ("a reorder-held message is never flushed, so its receiver "
                "waits forever")

    def reorder_flushes(self):
        return False


class _SilentLoss(TransitionTable):
    name = "silent-loss"
    mutation = ("an unrecoverable fragment loss on the unreliable fabric "
                "is not reported (no RPD450, no rendezvous release)")

    def loss_reported(self):
        return False


class _DoubleCancelRecycle(TransitionTable):
    name = "double-cancel-recycle"
    mutation = ("Request.cancel is not idempotent: a second cancel "
                "recycles the staging buffers again")

    def cancel_idempotent(self):
        return False


@dataclass(frozen=True)
class Mutant:
    """One seeded protocol bug and its designated detection channel."""

    table: TransitionTable
    #: Scenario names (from :func:`builtin_scenarios`) that expose it.
    scenarios: tuple
    #: The RPD code(s) that MUST fire — the designated channel.
    expect: tuple


MUTANT_CORPUS: tuple[Mutant, ...] = (
    Mutant(_AckBeforeCrc(), ("corrupt-reliable",), ("RPD702",)),
    Mutant(_SeqWindowOffByOne(), ("dup-reliable",), ("RPD702",)),
    Mutant(_RecycleBeforeAck(), ("clean-ring",), ("RPD703",)),
    Mutant(_MissingProcFailed(), ("crash",), ("RPD704",)),
    Mutant(_SilentExhaustion(), ("drop-exhaust",), ("RPD701",)),
    Mutant(_RetryWithoutBudget(), ("drop-exhaust",), ("RPD710",)),
    Mutant(_DropHeldReorder(), ("reorder-lossy",), ("RPD700",)),
    Mutant(_SilentLoss(), ("drop-lossy",), ("RPD701",)),
    Mutant(_DoubleCancelRecycle(), ("cancel",), ("RPD703",)),
)


def run_mutant_corpus(nranks: int = 3, depth: int = 60,
                      max_states: int = 200_000
                      ) -> tuple[list, list, ModelReport]:
    """Model-check every mutant; each must trip its designated RPD code.

    Returns ``(diagnostics, missed, report)`` where ``missed`` lists
    human-readable descriptions of mutants whose designated channel did
    not fire (the corpus run fails the build when non-empty).
    """
    by_name = {s.name: s for s in builtin_scenarios(nranks)}
    diags: list = []
    missed: list = []
    report = ModelReport()
    for mutant in MUTANT_CORPUS:
        fired: set = set()
        for sname in mutant.scenarios:
            scn = by_name[sname]
            res = check_scenario(scn, mutant.table, depth=depth,
                                 max_states=max_states)
            report.results.append(res)
            diags.extend(res.diagnostics)
            fired |= {d.code for d in res.diagnostics}
        for code in mutant.expect:
            if code not in fired:
                missed.append(
                    f"{mutant.table.name}: expected {code} on "
                    f"{'/'.join(mutant.scenarios)}, got "
                    f"{sorted(fired) or 'nothing'}")
    return diags, missed, report
