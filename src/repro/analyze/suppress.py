"""Inline ``# noqa`` suppressions shared by the linter and flow verifier.

A finding is suppressed when the flagged physical line carries a ``noqa``
comment — either blanket (``# noqa``) or listing the code (``# noqa:
RPD301,RPD502``).  Directives that suppress nothing are themselves reported
as ``RPD590`` notices (visible under ``--strict``), so stale suppressions
don't silently outlive the code they were written for.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Optional

from .diagnostics import Diagnostic

_NOQA_RE = re.compile(
    r"#\s*noqa(?P<sep>\s*:\s*(?P<codes>[A-Z0-9][A-Z0-9, ]*))?",
    re.IGNORECASE)


class NoqaDirective:
    """One ``# noqa`` comment: its location and the codes it names."""

    __slots__ = ("line", "col", "codes", "used")

    def __init__(self, line: int, col: int, codes: Optional[frozenset]):
        self.line = line            # 1-based physical line
        self.col = col              # 0-based column of the comment
        self.codes = codes          # None = blanket suppression
        self.used = False

    def suppresses(self, code: str) -> bool:
        return self.codes is None or code in self.codes


def collect_noqa(source: str) -> dict[int, NoqaDirective]:
    """Map line number -> directive for every ``# noqa`` comment.

    Tokenizes so that ``noqa`` text inside string literals is not
    misread as a directive; on tokenization errors (the linter reports
    those files as RPD300 anyway) returns no directives.
    """
    directives: dict[int, NoqaDirective] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _NOQA_RE.search(tok.string)
            if m is None:
                continue
            codes: Optional[frozenset] = None
            if m.group("codes"):
                codes = frozenset(
                    c.strip().upper()
                    for c in m.group("codes").split(",") if c.strip())
                if not any(c.startswith("RPD") for c in codes):
                    continue  # another tool's directive (e.g. noqa: E402)
            line, col = tok.start
            directives[line] = NoqaDirective(line, col + m.start(), codes)
    except (tokenize.TokenError, IndentationError, SyntaxError,
            ValueError):
        return {}
    return directives


def apply_suppressions(findings, path: str, source: Optional[str] = None):
    """Filter ``findings`` for one file through its noqa directives.

    Returns ``(kept, notices)`` where ``notices`` are the ``RPD590``
    unused-suppression diagnostics.  ``source`` may be passed when already
    in hand; otherwise the file is read from disk.
    """
    if source is None:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except (OSError, UnicodeDecodeError):
            return list(findings), []
    directives = collect_noqa(source)
    if not directives:
        return list(findings), []
    kept = []
    for diag in findings:
        directive = directives.get(diag.line)
        if directive is not None and directive.suppresses(diag.code):
            directive.used = True
        else:
            kept.append(diag)
    notices = []
    for directive in sorted(directives.values(), key=lambda d: d.line):
        if directive.used:
            continue
        what = "blanket 'noqa'" if directive.codes is None else \
            f"'noqa: {', '.join(sorted(directive.codes))}'"
        notices.append(Diagnostic(
            "RPD590",
            f"unused {what} suppression: nothing to suppress on this line",
            hint="remove the stale noqa comment",
            file=path, line=directive.line, col=directive.col))
    return kept, notices
