"""repro — reproduction of "Improving MPI Language Support Through Custom
Datatype Serialization" (SC 2024).

Subpackages
-----------
``repro.core``
    Datatypes: derived-type constructors, the pack engine, and the paper's
    custom (callback-driven) datatype API with builders and adapters.
``repro.ucp``
    Simulated UCP transport: tag matching, eager/rendezvous/iov protocols,
    the virtual-time cost model standing in for the paper's InfiniBand
    testbed.
``repro.mpi``
    Simplified MPI implementation: communicators, point-to-point,
    probe/mprobe, collectives, and the SPMD thread runtime.
``repro.serial``
    Pickle-5 strategies (basic / out-of-band / out-of-band over custom
    datatypes) mirroring the paper's Python evaluation.
``repro.types``
    The paper's Rust benchmark types (struct-simple, struct-vec,
    double-vec, ...) as Python objects with identical byte layouts.
``repro.ddtbench``
    The DDTBench workload subset (LAMMPS, MILC, NAS, WRF).
``repro.bench``
    OSU-style pingpong drivers and the figure-regeneration harness.
"""

__version__ = "0.1.0"

from . import errors  # noqa: F401  (re-exported for convenience)

__all__ = ["errors", "__version__"]
