"""Figure regeneration: one builder per figure of the paper's evaluation.

Every builder returns a :class:`FigureSeries` whose curves correspond to the
lines (or bars) of the original figure.  ``quick=True`` trims the size range
so the builders run in seconds inside the test suite; the benchmark harness
uses the full ranges.

Expected shapes (what EXPERIMENTS.md checks against the paper):

* Fig. 1 — custom improves with larger sub-vectors, beats manual-pack past
  ~2^9; the bytes baseline is lowest.
* Fig. 2 — custom out-bandwidths manual-pack at large sizes (regions beat
  the extra pack/unpack copies).
* Fig. 3/4 — custom has higher latency than the derived baseline for small
  struct-vec messages and converges by ~2^18.
* Fig. 5 — the gap forces the derived engine onto its slow path: custom and
  manual-pack are faster.
* Fig. 6 — without the gap the derived engine is contiguous and best.
* Fig. 7 — manual-pack dips at the 2^15 eager->rendezvous switch; custom
  (iovec) is smooth.
* Fig. 8/9 — out-of-band strategies beat basic pickle from ~2^18 up and
  no strategy reaches the roofline (receive-side allocation).
* Fig. 10 — regions win where runs are few/large (MILC, NAS_LU_x, NAS_MG_y)
  and lose where runs are tiny (NAS_LU_y, NAS_MG_x).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..ddtbench.registry import WORKLOADS
from ..serial.objects import make_complex_object, make_single_array
from ..serial.strategies import BasicPickle, OobCdtPickle, OobPickle
from ..ucp.netsim import LinkParams
from .cases import (DDT_METHODS, DoubleVecCustomCase, DoubleVecPackedCase,
                    PickleCase, RawBytesCase, StructCustomCase,
                    StructDerivedCase, StructPackedCase, WorkloadCase)
from .timing import SweepPoint, pow2_sizes, sweep_pingpong


@dataclass
class FigureSeries:
    """Regenerated data of one figure."""

    figure: str
    title: str
    xlabel: str
    ylabel: str
    x: list
    curves: dict[str, list[float]] = field(default_factory=dict)
    notes: str = ""

    def curve(self, name: str) -> list[float]:
        return self.curves[name]


def _metric(points: Sequence[SweepPoint], ylabel: str) -> list[float]:
    if "Latency" in ylabel:
        return [p.latency_us for p in points]
    return [p.bandwidth_MBps for p in points]


def _sweep(case_factory, sizes, ylabel, params) -> list[float]:
    return _metric(sweep_pingpong(case_factory, sizes, params=params), ylabel)


# ---------------------------------------------------------------------------
# Figures 1-2: double-vector
# ---------------------------------------------------------------------------

def fig1_double_vec_latency(quick: bool = True,
                            params: Optional[LinkParams] = None) -> FigureSeries:
    """Fig. 1: double-vector latency for sub-vector sizes 64 B-4 KiB."""
    sizes = pow2_sizes(6, 16 if quick else 20)
    subvecs = [64, 256, 1024, 4096]
    fs = FigureSeries(
        figure="fig1", title="Latency: double-vector type, varying sub-vector size",
        xlabel="message size (bytes)", ylabel="Latency (us)", x=sizes)
    for sv in subvecs:
        fs.curves[f"custom (subvec {sv}B)"] = _sweep(
            lambda s, sv=sv: DoubleVecCustomCase(s, sv), sizes, fs.ylabel, params)
    fs.curves["manual-pack (subvec 1024B)"] = _sweep(
        lambda s: DoubleVecPackedCase(s, 1024), sizes, fs.ylabel, params)
    fs.curves["rsmpi-bytes-baseline"] = _sweep(
        lambda s: RawBytesCase(s), sizes, fs.ylabel, params)
    return fs


def fig2_double_vec_bandwidth(quick: bool = True,
                              params: Optional[LinkParams] = None) -> FigureSeries:
    """Fig. 2: double-vector bandwidth at sub-vector size 1024 B."""
    sizes = pow2_sizes(10, 19 if quick else 24)
    fs = FigureSeries(
        figure="fig2", title="Bandwidth: double-vector type (sub-vector 1024B)",
        xlabel="message size (bytes)", ylabel="Bandwidth (MB/s)", x=sizes)
    fs.curves["custom"] = _sweep(lambda s: DoubleVecCustomCase(s, 1024),
                                 sizes, fs.ylabel, params)
    fs.curves["manual-pack"] = _sweep(lambda s: DoubleVecPackedCase(s, 1024),
                                      sizes, fs.ylabel, params)
    fs.curves["rsmpi-bytes-baseline"] = _sweep(lambda s: RawBytesCase(s),
                                               sizes, fs.ylabel, params)
    return fs


# ---------------------------------------------------------------------------
# Figures 3-7: struct types
# ---------------------------------------------------------------------------

def _struct_figure(figure: str, kind: str, ylabel: str, sizes: list[int],
                   params: Optional[LinkParams]) -> FigureSeries:
    fs = FigureSeries(
        figure=figure, title=f"{ylabel.split(' ')[0]}: {kind} type",
        xlabel="message size (bytes)", ylabel=ylabel, x=sizes)
    fs.curves["custom"] = _sweep(lambda s: StructCustomCase(s, kind),
                                 sizes, ylabel, params)
    fs.curves["manual-pack"] = _sweep(lambda s: StructPackedCase(s, kind),
                                      sizes, ylabel, params)
    fs.curves["rsmpi-derived-datatype"] = _sweep(
        lambda s: StructDerivedCase(s, kind), sizes, ylabel, params)
    return fs


def fig3_struct_vec_latency(quick: bool = True,
                            params: Optional[LinkParams] = None) -> FigureSeries:
    """Fig. 3: struct-vector latency (custom vs manual-pack vs derived)."""
    sizes = pow2_sizes(13, 18 if quick else 22)
    return _struct_figure("fig3", "struct-vec", "Latency (us)", sizes, params)


def fig4_struct_vec_bandwidth(quick: bool = True,
                              params: Optional[LinkParams] = None) -> FigureSeries:
    """Fig. 4: struct-vector bandwidth."""
    sizes = pow2_sizes(15, 20 if quick else 24)
    return _struct_figure("fig4", "struct-vec", "Bandwidth (MB/s)", sizes, params)


def fig5_struct_simple_latency(quick: bool = True,
                               params: Optional[LinkParams] = None) -> FigureSeries:
    """Fig. 5: struct-simple latency (the 4-byte-gap penalty)."""
    sizes = pow2_sizes(6, 16 if quick else 20)
    return _struct_figure("fig5", "struct-simple", "Latency (us)", sizes, params)


def fig6_struct_simple_no_gap_latency(quick: bool = True,
                                      params: Optional[LinkParams] = None
                                      ) -> FigureSeries:
    """Fig. 6: struct-simple-no-gap latency (contiguous fast path)."""
    sizes = pow2_sizes(6, 16 if quick else 20)
    return _struct_figure("fig6", "struct-simple-no-gap", "Latency (us)",
                          sizes, params)


def fig7_struct_simple_bandwidth(quick: bool = True,
                                 params: Optional[LinkParams] = None
                                 ) -> FigureSeries:
    """Fig. 7: struct-simple bandwidth (the eager->rendezvous dip)."""
    sizes = pow2_sizes(10, 19 if quick else 24)
    return _struct_figure("fig7", "struct-simple", "Bandwidth (MB/s)",
                          sizes, params)


# ---------------------------------------------------------------------------
# Figures 8-9: Python pickle strategies
# ---------------------------------------------------------------------------

_PY_STRATEGIES = (
    ("pickle-basic", BasicPickle),
    ("pickle-oob", OobPickle),
    ("pickle-oob-cdt", OobCdtPickle),
)


def _pickle_figure(figure: str, title: str, factory: Callable[[int], object],
                   sizes: list[int], params: Optional[LinkParams]
                   ) -> FigureSeries:
    fs = FigureSeries(figure=figure, title=title,
                      xlabel="message size (bytes)",
                      ylabel="Bandwidth (MB/s)", x=sizes)
    fs.curves["roofline"] = _sweep(lambda s: RawBytesCase(s), sizes,
                                   fs.ylabel, params)
    for name, cls in _PY_STRATEGIES:
        fs.curves[name] = _sweep(
            lambda s, cls=cls: PickleCase(s, cls(), factory),
            sizes, fs.ylabel, params)
    return fs


def fig8_pickle_single_array(quick: bool = True,
                             params: Optional[LinkParams] = None) -> FigureSeries:
    """Fig. 8: Python pingpong over single NumPy arrays."""
    sizes = pow2_sizes(10, 21 if quick else 26)
    return _pickle_figure(
        "fig8", "Python pingpong: single NumPy array",
        lambda s: make_single_array(s), sizes, params)


def fig9_pickle_complex_object(quick: bool = True,
                               params: Optional[LinkParams] = None
                               ) -> FigureSeries:
    """Fig. 9: Python pingpong over complex objects of 128-KiB arrays."""
    sizes = pow2_sizes(17, 21 if quick else 25)
    return _pickle_figure(
        "fig9", "Python pingpong: complex object of 128-KiB arrays",
        lambda s: make_complex_object(s), sizes, params)


# ---------------------------------------------------------------------------
# Figure 10: DDTBench
# ---------------------------------------------------------------------------

def fig10_ddtbench(params: Optional[LinkParams] = None,
                   workloads: Optional[Sequence[str]] = None,
                   methods: Optional[Sequence[str]] = None) -> FigureSeries:
    """Fig. 10: DDTBench bandwidth per workload and transfer method."""
    names = list(workloads or WORKLOADS)
    meths = list(methods or DDT_METHODS)
    fs = FigureSeries(
        figure="fig10", title="DDTBench: bandwidth per workload and method",
        xlabel="workload", ylabel="Bandwidth (MB/s)", x=names)
    for method in meths:
        col: list[float] = []
        for name in names:
            w = WORKLOADS[name]()
            if method == "custom-region" and not w.meta.memory_regions:
                col.append(float("nan"))
                continue
            pt = sweep_pingpong(lambda s, w=w, m=method: WorkloadCase(w, m),
                                [w.packed_bytes], params=params)[0]
            col.append(pt.bandwidth_MBps)
        fs.curves[method] = col
    return fs


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def format_figure(fs: FigureSeries, width: int = 12) -> str:
    """ASCII table of a figure's series (the paper-plot data)."""
    names = list(fs.curves)
    head = [fs.xlabel.split(" ")[0].ljust(10)] + [n[:width].rjust(width)
                                                  for n in names]
    lines = [f"== {fs.figure}: {fs.title} ==", " | ".join(head)]
    for i, x in enumerate(fs.x):
        row = [str(x).ljust(10)]
        for n in names:
            v = fs.curves[n][i]
            row.append((f"{v:,.2f}" if v == v else "-").rjust(width))
        lines.append(" | ".join(row))
    if fs.notes:
        lines.append(f"note: {fs.notes}")
    return "\n".join(lines)


ALL_FIGURES: dict[str, Callable[..., FigureSeries]] = {
    "fig1": fig1_double_vec_latency,
    "fig2": fig2_double_vec_bandwidth,
    "fig3": fig3_struct_vec_latency,
    "fig4": fig4_struct_vec_bandwidth,
    "fig5": fig5_struct_simple_latency,
    "fig6": fig6_struct_simple_no_gap_latency,
    "fig7": fig7_struct_simple_bandwidth,
    "fig8": fig8_pickle_single_array,
    "fig9": fig9_pickle_complex_object,
}
