"""Benchmark harness: pingpong drivers, method cases, figure builders."""

from .calibration import (default_params, expensive_regions_params,
                          no_rendezvous_params, slow_network_params)
from .cases import (DDT_METHODS, DoubleVecCustomCase, DoubleVecPackedCase,
                    PickleCase, RawBytesCase, StructCustomCase,
                    StructDerivedCase, StructPackedCase, WorkloadCase,
                    struct_count_for)
from .figures import (ALL_FIGURES, FigureSeries, fig1_double_vec_latency,
                      fig2_double_vec_bandwidth, fig3_struct_vec_latency,
                      fig4_struct_vec_bandwidth, fig5_struct_simple_latency,
                      fig6_struct_simple_no_gap_latency,
                      fig7_struct_simple_bandwidth, fig8_pickle_single_array,
                      fig9_pickle_complex_object, fig10_ddtbench,
                      format_figure)
from .timing import (Case, SweepPoint, charge_alloc, charge_copy, pow2_sizes,
                     run_once, sweep_pingpong)

__all__ = [
    "Case", "SweepPoint", "sweep_pingpong", "run_once", "pow2_sizes",
    "charge_copy", "charge_alloc",
    "RawBytesCase", "DoubleVecCustomCase", "DoubleVecPackedCase",
    "StructCustomCase", "StructPackedCase", "StructDerivedCase",
    "PickleCase", "WorkloadCase", "DDT_METHODS", "struct_count_for",
    "FigureSeries", "format_figure", "ALL_FIGURES",
    "fig1_double_vec_latency", "fig2_double_vec_bandwidth",
    "fig3_struct_vec_latency", "fig4_struct_vec_bandwidth",
    "fig5_struct_simple_latency", "fig6_struct_simple_no_gap_latency",
    "fig7_struct_simple_bandwidth", "fig8_pickle_single_array",
    "fig9_pickle_complex_object", "fig10_ddtbench",
    "default_params", "slow_network_params", "no_rendezvous_params",
    "expensive_regions_params",
]
