"""OSU-style pingpong drivers over virtual time.

A *case* encapsulates one transfer method for one message size: it prepares
rank-local state, then performs one send or one receive per call.  The
driver runs a standard pingpong (rank 0 sends, rank 1 echoes) and reads the
one-way time off rank 0's virtual clock, exactly how the OSU latency test
computes its numbers — except the clock is the simulator's.

Cases representing *user-level* work (manual packing, allocations done by
application code rather than by the engine) charge their modelled cost
explicitly via :func:`charge_copy` / :func:`charge_alloc`, so every method
is priced by the same cost model whether the work happens inside or outside
the MPI library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..mpi.comm import Communicator
from ..mpi.engine import EngineConfig
from ..mpi.runtime import run
from ..ucp.netsim import LinkParams


def charge_copy(comm: Communicator, nbytes: int) -> None:
    """Charge a vectorized user-space copy of ``nbytes``."""
    comm.clock.advance(comm.worker.model.copy_time(nbytes))


def charge_alloc(comm: Communicator, nbytes: int) -> None:
    """Charge a fresh user-space allocation of ``nbytes``."""
    comm.clock.advance(comm.worker.model.alloc_time(nbytes))


class Case:
    """One prepared transfer method at one size."""

    def setup(self, comm: Communicator) -> None:
        """Prepare rank-local buffers (called once per size, per rank)."""

    def send(self, comm: Communicator, dest: int, tag: int) -> None:
        raise NotImplementedError

    def recv(self, comm: Communicator, source: int, tag: int) -> None:
        raise NotImplementedError


@dataclass
class SweepPoint:
    """One (size, time) sample of a sweep."""

    size: int
    one_way_s: float

    @property
    def latency_us(self) -> float:
        return self.one_way_s * 1e6

    @property
    def bandwidth_MBps(self) -> float:
        return (self.size / self.one_way_s) / 1e6 if self.one_way_s > 0 else 0.0


def sweep_pingpong(case_factory: Callable[[int], Case],
                   sizes: Sequence[int],
                   iters: int = 4,
                   warmup: int = 1,
                   params: Optional[LinkParams] = None,
                   engine_config: Optional[EngineConfig] = None,
                   timeout: float = 300.0) -> list[SweepPoint]:
    """Run one job sweeping all sizes for one method; returns per-size times.

    The paper averages four runs; the virtual clock is deterministic, so
    ``iters`` round trips are averaged instead (identical samples, zero
    error bars — reported as such by the figure formatter).
    """

    def rank_fn(comm: Communicator):
        samples: list[float] = []
        peer = 1 - comm.rank
        for i, size in enumerate(sizes):
            case = case_factory(size)
            case.setup(comm)
            comm.barrier()
            for it in range(warmup + iters):
                if it == warmup:
                    comm.barrier()
                    t0 = comm.clock.now
                tag = i & 0xFF
                if comm.rank == 0:
                    case.send(comm, peer, tag)
                    case.recv(comm, peer, tag)
                else:
                    case.recv(comm, peer, tag)
                    case.send(comm, peer, tag)
            samples.append((comm.clock.now - t0) / (2 * iters))
        return samples

    result = run(rank_fn, nprocs=2, params=params, engine_config=engine_config,
                 timeout=timeout)
    times = result.results[0]
    return [SweepPoint(size=s, one_way_s=t) for s, t in zip(sizes, times)]


def run_once(case_factory: Callable[[int], Case], size: int,
             params: Optional[LinkParams] = None,
             engine_config: Optional[EngineConfig] = None) -> SweepPoint:
    """Single-size convenience wrapper."""
    return sweep_pingpong(case_factory, [size], params=params,
                          engine_config=engine_config)[0]


def pow2_sizes(lo: int, hi: int) -> list[int]:
    """Powers of two from 2**lo to 2**hi inclusive."""
    return [1 << k for k in range(lo, hi + 1)]
