"""Cost-model calibration: the constants and why they are what they are.

The testbed substitute (DESIGN.md §2) is a LogGP-style model.  Constants are
calibrated to the paper's hardware class (two EPYC servers, ConnectX-5 at
100 Gbps, UCX 1.12) and — more importantly — to the *relationships* that
produce each figure's shape:

``latency = 1.5 us``, ``bandwidth = 12.5 GB/s``
    ConnectX-5 class point-to-point numbers (100 Gbps line rate).

``eager_limit = 32 KiB``, ``rndv_handshake = 3 us``
    UCX switches from eager to rendezvous around this size on this fabric;
    the paper attributes the manual-pack bandwidth dip at 2^15 to exactly
    this switch (Fig. 7).  The iovec path has no such threshold, which is
    why ``custom`` is smooth there.

``copy_bandwidth = 8 GB/s``
    Streaming memcpy through cache for pack/unpack copies.  Eager transfers
    pay one such copy per side; manual packing pays one more per side.

``elem_cost = 5 ns``
    Per-descriptor-block cost of the derived-datatype engine when a type has
    gaps.  struct-simple has two blocks per 20-byte element, so the engine
    spends ~10 ns/element versus ~2.5 ns of pure copy — the Fig. 5 penalty.
    Gap-free types bypass the walk entirely (Fig. 6).

``iov_base_overhead = 1 us``, ``iov_region_overhead = 10 ns``
    Fixed cost of the scatter/gather path plus per-entry descriptor cost.
    With 64-byte sub-vectors a double-vec message pays 10 ns per 64 bytes
    (expensive); with 4-KiB sub-vectors the overhead vanishes — Fig. 1's
    ordering of the custom curves.  Two pack copies cost
    ``2 * subvec / 8 GB/s`` = 16 ns per 64 B, so regions still beat manual
    packing even at the smallest sub-vector size, as the paper observed.

``alloc_base = 0.3 us``, ``alloc_bandwidth = 12 GB/s``
    malloc plus first-touch page-in.  Receive-side allocation is charged to
    every pickle strategy (none can reach the roofline, Figs. 8-9) and to
    engine bounce buffers for derived types.

``callback_overhead = 100 ns``
    Crossing the application-callback boundary (indirect call + FFI-ish
    marshalling); the custom path pays a handful per message.

``pickle_base = 2 us``, ``pickle_bandwidth = 5 GB/s``
    pickle.dumps/loads call overhead and in-band byte processing; the
    out-of-band strategies only push the ~120-byte header through this,
    while basic pickle pushes the whole payload (the Fig. 8 separation
    beyond 2^18).

``probe_overhead = 0.5 us``
    An MPI_Mprobe round — paid once per receive by basic pickle and twice
    by multi-message out-of-band pickle.
"""

from __future__ import annotations

from ..ucp.netsim import DEFAULT_PARAMS, LinkParams


def default_params() -> LinkParams:
    """The calibrated baseline used by every figure."""
    return DEFAULT_PARAMS


def slow_network_params(factor: float = 10.0) -> LinkParams:
    """Ablation: a network ``factor`` times slower (shifts crossovers left)."""
    return DEFAULT_PARAMS.with_overrides(
        bandwidth=DEFAULT_PARAMS.bandwidth / factor,
        latency=DEFAULT_PARAMS.latency * factor)


def no_rendezvous_params() -> LinkParams:
    """Ablation: eager-only transport (removes the Fig. 7 dip)."""
    return DEFAULT_PARAMS.with_overrides(eager_limit=1 << 62)


def expensive_regions_params(per_region_ns: float = 500.0) -> LinkParams:
    """Ablation: pathological per-region cost (regions always lose)."""
    return DEFAULT_PARAMS.with_overrides(iov_region_overhead=per_region_ns * 1e-9)
