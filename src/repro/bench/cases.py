"""Transfer-method cases for every figure of the paper.

Each class implements one line/bar of the evaluation:

* Rust figures 1-7: ``RawBytesCase`` (rsmpi-bytes baseline / roofline),
  ``DoubleVecCustomCase``, ``DoubleVecPackedCase``, struct cases in
  custom / manual-pack / derived (rsmpi) flavours.
* Python figures 8-9: ``PickleCase`` over the three strategies plus the
  raw-buffer roofline.
* DDTBench figure 10: ``WorkloadCase`` with the six methods.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core import BYTE
from ..ddtbench.base import Workload
from ..mpi.pack_external import pack_into, pack_size, unpack_from
from ..serial.strategies import Strategy
from ..types import (STRUCT_SIMPLE, STRUCT_SIMPLE_NO_GAP,
                     STRUCT_SIMPLE_NO_GAP_PACKED, STRUCT_SIMPLE_PACKED,
                     STRUCT_VEC, STRUCT_VEC_PACKED, DoubleVec,
                     double_vec_custom_datatype, make_struct_simple,
                     make_struct_simple_no_gap, make_struct_vec,
                     manual_pack_struct_simple, manual_pack_struct_simple_no_gap,
                     manual_pack_struct_vec, manual_unpack_struct_simple,
                     manual_unpack_struct_simple_no_gap,
                     manual_unpack_struct_vec, struct_simple_custom_datatype,
                     struct_simple_datatype, struct_simple_no_gap_custom_datatype,
                     struct_simple_no_gap_datatype, struct_vec_custom_datatype,
                     struct_vec_datatype)
from .timing import Case, charge_alloc, charge_copy


# ---------------------------------------------------------------------------
# Raw bytes: the rsmpi-bytes baseline (Fig. 1) and the roofline (Figs. 8-9)
# ---------------------------------------------------------------------------

class RawBytesCase(Case):
    """Preallocated contiguous buffers, no serialization anywhere."""

    def __init__(self, size: int):
        self.size = size

    def setup(self, comm):
        self.sbuf = np.full(self.size, comm.rank + 1, dtype=np.uint8)
        self.rbuf = np.zeros(self.size, dtype=np.uint8)

    def send(self, comm, dest, tag):
        comm.send(self.sbuf, dest, tag, datatype=BYTE, count=self.size)

    def recv(self, comm, source, tag):
        comm.recv(self.rbuf, source, tag, datatype=BYTE, count=self.size)


# ---------------------------------------------------------------------------
# double-vector (Figs. 1-2)
# ---------------------------------------------------------------------------

class DoubleVecCustomCase(Case):
    """The custom method: lengths in-band, sub-vectors as regions."""

    def __init__(self, size: int, subvec_bytes: int = 1024):
        self.size = size
        self.subvec_bytes = subvec_bytes
        self.dtype = double_vec_custom_datatype()

    def setup(self, comm):
        self.dv = DoubleVec.uniform(self.size, self.subvec_bytes)

    def send(self, comm, dest, tag):
        comm.send(self.dv, dest, tag, datatype=self.dtype)

    def recv(self, comm, source, tag):
        self.dv = DoubleVec()
        comm.recv(self.dv, source, tag, datatype=self.dtype)


class DoubleVecPackedCase(Case):
    """The manual-pack method: everything copied into one byte stream."""

    def __init__(self, size: int, subvec_bytes: int = 1024):
        self.size = size
        self.subvec_bytes = subvec_bytes

    def setup(self, comm):
        self.dv = DoubleVec.uniform(self.size, self.subvec_bytes)
        self.packed_len = self.dv.manual_pack().shape[0]
        self.rbuf = np.zeros(self.packed_len, dtype=np.uint8)

    def send(self, comm, dest, tag):
        charge_alloc(comm, self.packed_len)
        charge_copy(comm, self.packed_len)
        packed = self.dv.manual_pack()
        comm.send(packed, dest, tag, datatype=BYTE, count=self.packed_len)

    def recv(self, comm, source, tag):
        comm.recv(self.rbuf, source, tag, datatype=BYTE, count=self.packed_len)
        charge_copy(comm, self.packed_len)
        self.dv = DoubleVec.manual_unpack(self.rbuf)


# ---------------------------------------------------------------------------
# struct types (Figs. 3-7)
# ---------------------------------------------------------------------------

_STRUCTS = {
    "struct-simple": dict(
        dtype=STRUCT_SIMPLE, packed=STRUCT_SIMPLE_PACKED,
        make=make_struct_simple, derived=struct_simple_datatype,
        custom=struct_simple_custom_datatype,
        pack=manual_pack_struct_simple, unpack=manual_unpack_struct_simple),
    "struct-simple-no-gap": dict(
        dtype=STRUCT_SIMPLE_NO_GAP, packed=STRUCT_SIMPLE_NO_GAP_PACKED,
        make=make_struct_simple_no_gap, derived=struct_simple_no_gap_datatype,
        custom=struct_simple_no_gap_custom_datatype,
        pack=manual_pack_struct_simple_no_gap,
        unpack=manual_unpack_struct_simple_no_gap),
    "struct-vec": dict(
        dtype=STRUCT_VEC, packed=STRUCT_VEC_PACKED,
        make=make_struct_vec, derived=struct_vec_datatype,
        custom=struct_vec_custom_datatype,
        pack=manual_pack_struct_vec, unpack=manual_unpack_struct_vec),
}


def struct_count_for(kind: str, size_bytes: int) -> int:
    """Element count whose packed size is ~``size_bytes`` (>= 1)."""
    return max(1, size_bytes // _STRUCTS[kind]["packed"])


class StructDerivedCase(Case):
    """rsmpi / Open MPI derived-datatype baseline."""

    def __init__(self, size: int, kind: str = "struct-simple"):
        self.spec = _STRUCTS[kind]
        self.count = struct_count_for(kind, size)
        self.dtype = self.spec["derived"]()

    def setup(self, comm):
        self.sbuf = self.spec["make"](self.count)
        self.rbuf = np.zeros(self.count, dtype=self.spec["dtype"])

    def send(self, comm, dest, tag):
        comm.send(self.sbuf, dest, tag, datatype=self.dtype, count=self.count)

    def recv(self, comm, source, tag):
        comm.recv(self.rbuf, source, tag, datatype=self.dtype, count=self.count)


class StructPackedCase(Case):
    """manual-pack: vectorized user packing, sent as MPI_BYTE."""

    def __init__(self, size: int, kind: str = "struct-simple"):
        if _STRUCTS[kind]["pack"] is None:
            raise ValueError(f"no manual packer for {kind}")
        self.spec = _STRUCTS[kind]
        self.count = struct_count_for(kind, size)
        self.packed_len = self.count * self.spec["packed"]

    def setup(self, comm):
        self.sbuf = self.spec["make"](self.count)
        self.rbuf = np.zeros(self.count, dtype=self.spec["dtype"])
        self.prbuf = np.zeros(self.packed_len, dtype=np.uint8)

    def send(self, comm, dest, tag):
        charge_alloc(comm, self.packed_len)
        charge_copy(comm, self.packed_len)
        packed = self.spec["pack"](self.sbuf)
        comm.send(packed, dest, tag, datatype=BYTE, count=self.packed_len)

    def recv(self, comm, source, tag):
        comm.recv(self.prbuf, source, tag, datatype=BYTE, count=self.packed_len)
        charge_copy(comm, self.packed_len)
        self.spec["unpack"](self.prbuf, self.rbuf)


class StructCustomCase(Case):
    """The paper's custom datatype for struct types."""

    def __init__(self, size: int, kind: str = "struct-simple"):
        if _STRUCTS[kind]["custom"] is None:
            raise ValueError(f"no custom datatype for {kind}")
        self.spec = _STRUCTS[kind]
        self.count = struct_count_for(kind, size)
        self.dtype = self.spec["custom"]()

    def setup(self, comm):
        self.sbuf = self.spec["make"](self.count)
        self.rbuf = np.zeros(self.count, dtype=self.spec["dtype"])

    def send(self, comm, dest, tag):
        comm.send(self.sbuf, dest, tag, datatype=self.dtype, count=self.count)

    def recv(self, comm, source, tag):
        comm.recv(self.rbuf, source, tag, datatype=self.dtype, count=self.count)


# ---------------------------------------------------------------------------
# Python pickle strategies (Figs. 8-9)
# ---------------------------------------------------------------------------

class PickleCase(Case):
    """One pickle strategy moving one object shape.

    The receive side keeps the reconstructed object and echoes it back, so a
    full pingpong serializes on both ranks — the paper's Python test.
    """

    def __init__(self, size: int, strategy: Strategy,
                 factory: Callable[[int], object]):
        self.size = size
        self.strategy = strategy
        self.factory = factory
        self.obj: object | None = None

    def setup(self, comm):
        if comm.rank == 0:
            self.obj = self.factory(self.size)

    def send(self, comm, dest, tag):
        self.strategy.send(comm, self.obj, dest, tag)

    def recv(self, comm, source, tag):
        self.obj = self.strategy.recv(comm, source, tag)


# ---------------------------------------------------------------------------
# DDTBench (Fig. 10)
# ---------------------------------------------------------------------------

DDT_METHODS = ("reference", "ompi-datatype", "ompi-pack", "manual-pack",
               "custom-pack", "custom-region", "custom-coro")


class WorkloadCase(Case):
    """One DDTBench workload under one transfer method."""

    def __init__(self, workload: Workload, method: str):
        if method not in DDT_METHODS:
            raise ValueError(f"unknown DDTBench method {method!r}")
        if method == "custom-region" and not workload.meta.memory_regions:
            raise ValueError(f"{workload.name}: regions are impracticable")
        self.w = workload
        self.method = method
        self.packed_len = workload.packed_bytes
        if method == "ompi-datatype":
            self.dtype = workload.derived_datatype()
        elif method == "ompi-pack":
            self.dtype = workload.derived_datatype()
        elif method == "custom-pack":
            self.dtype = workload.custom_pack_datatype()
        elif method == "custom-region":
            self.dtype = workload.custom_region_datatype()
        elif method == "custom-coro":
            self.dtype = workload.custom_coroutine_datatype()
        else:
            self.dtype = None

    def setup(self, comm):
        self.sbuf = self.w.make_send_buffer()
        self.rbuf = self.w.make_recv_buffer()
        self.prbuf = np.zeros(self.packed_len, dtype=np.uint8)

    # The echoing rank sends from its receive buffer, so correctness of the
    # full round trip is checked end-to-end by the tests.

    def _src(self, comm) -> np.ndarray:
        return self.sbuf if comm.rank == 0 else self.rbuf

    def send(self, comm, dest, tag):
        m = self.method
        if m == "reference":
            comm.send(self.prbuf, dest, tag, datatype=BYTE, count=self.packed_len)
        elif m in ("ompi-datatype", "custom-pack", "custom-region", "custom-coro"):
            comm.send(self._src(comm), dest, tag, datatype=self.dtype, count=1)
        elif m == "ompi-pack":
            n = pack_size(1, self.dtype)
            charge_alloc(comm, n)
            out = np.empty(n, dtype=np.uint8)
            pack_into(self._src(comm), 1, self.dtype, out, 0)
            # Up-front MPI_Pack cannot pipeline with the wire (unlike the
            # engine's internal pack), so the walk pays the unpipelined
            # copy rate.
            nblocks = len(self.dtype.typemap.merged_blocks())
            model = comm.worker.model
            comm.clock.advance(nblocks * model.params.elem_cost
                               + model.copy_time(n))
            comm.send(out, dest, tag, datatype=BYTE, count=n)
        elif m == "manual-pack":
            charge_alloc(comm, self.packed_len)
            charge_copy(comm, self.packed_len)
            packed = self.w.manual_pack(self._src(comm))
            comm.send(packed, dest, tag, datatype=BYTE, count=self.packed_len)

    def recv(self, comm, source, tag):
        m = self.method
        if m == "reference":
            comm.recv(self.prbuf, source, tag, datatype=BYTE, count=self.packed_len)
        elif m in ("ompi-datatype", "custom-pack", "custom-region", "custom-coro"):
            comm.recv(self.rbuf, source, tag, datatype=self.dtype, count=1)
        elif m == "ompi-pack":
            comm.recv(self.prbuf, source, tag, datatype=BYTE, count=self.packed_len)
            nblocks = len(self.dtype.typemap.merged_blocks())
            model = comm.worker.model
            comm.clock.advance(nblocks * model.params.elem_cost
                               + model.copy_time(self.packed_len))
            unpack_from(self.prbuf, 0, self.rbuf, 1, self.dtype)
        elif m == "manual-pack":
            comm.recv(self.prbuf, source, tag, datatype=BYTE, count=self.packed_len)
            charge_copy(comm, self.packed_len)
            self.w.manual_unpack(self.prbuf, self.rbuf)
