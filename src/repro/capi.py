"""C-flavoured API layer (the paper's ``mpicd-capi`` crate).

The prototype exposes a simplified C MPI API on top of the Rust core; this
module is its Python analogue for applications (or bindings) that want the
paper's exact calling conventions instead of the Pythonic ones:

* every function returns ``MPI_SUCCESS`` or an ``MPI_ERR_*`` code (never
  raises for MPI-level failures),
* C out-parameters become tuple returns: ``(err, value)``,
* custom-datatype callbacks follow Listings 2-5 literally — they *return
  error codes* and deliver outputs via tuples:

  ==========================  =================================================
  C typedef                   Python signature here
  ==========================  =================================================
  state_function              ``statefn(context, src, src_count) -> (err, state)``
  state_free_function         ``freefn(state) -> err``
  query_function              ``queryfn(state, buf, count) -> (err, packed_size)``
  pack_function               ``packfn(state, buf, count, offset, dst) -> (err, used)``
  unpack_function             ``unpackfn(state, buf, count, offset, src) -> err``
  region_count_function       ``region_countfn(state, buf, count) -> (err, count)``
  region_function             ``regionfn(state, buf, count, region_count)
                              -> (err, reg_bases, reg_lens, reg_types)``
  ==========================  =================================================

A nonzero code from any callback aborts the MPI operation with that code.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .core.custom import CustomDatatype, type_create_custom
from .core.datatype import BYTE, Datatype
from .core.regions import Region
from .errors import (MPI_ERR_ARG, MPI_ERR_OTHER, MPI_SUCCESS, CallbackError,
                     MPIError, ReproError)
from .mpi.comm import Communicator
from .mpi.requests import ANY_SOURCE, ANY_TAG, Request, Status

__all__ = [
    "MPI_SUCCESS", "MPI_ANY_SOURCE", "MPI_ANY_TAG", "MPI_BYTE",
    "MPI_Type_create_custom",
    "MPI_Send", "MPI_Recv", "MPI_Isend", "MPI_Irecv", "MPI_Wait", "MPI_Test",
    "MPI_Probe", "MPI_Barrier", "MPI_Comm_rank", "MPI_Comm_size",
]

MPI_ANY_SOURCE = ANY_SOURCE
MPI_ANY_TAG = ANY_TAG
MPI_BYTE = BYTE


def _code_of(exc: BaseException) -> int:
    if isinstance(exc, MPIError):
        return exc.code
    return MPI_ERR_OTHER


def _callback_failed(code: int, name: str) -> CallbackError:
    return CallbackError(f"callback {name} returned error code {code}",
                         code=code)


def MPI_Type_create_custom(statefn: Optional[Callable] = None,
                           freefn: Optional[Callable] = None,
                           queryfn: Optional[Callable] = None,
                           packfn: Optional[Callable] = None,
                           unpackfn: Optional[Callable] = None,
                           region_countfn: Optional[Callable] = None,
                           regionfn: Optional[Callable] = None,
                           context: Any = None,
                           inorder: int = 0) -> tuple[int, Optional[CustomDatatype]]:
    """Listing 2, argument for argument.  Returns ``(err, datatype)``."""
    if queryfn is None:
        return MPI_ERR_ARG, None

    def _query(state, buf, count):
        err, size = queryfn(state, buf, count)
        if err != MPI_SUCCESS:
            raise _callback_failed(err, "queryfn")
        return size

    _pack = None
    if packfn is not None:
        def _pack(state, buf, count, offset, dst):
            err, used = packfn(state, buf, count, offset, dst)
            if err != MPI_SUCCESS:
                raise _callback_failed(err, "packfn")
            return used

    _unpack = None
    if unpackfn is not None:
        def _unpack(state, buf, count, offset, src):
            err = unpackfn(state, buf, count, offset, src)
            if err != MPI_SUCCESS:
                raise _callback_failed(err, "unpackfn")

    _rcount = _region = None
    if region_countfn is not None and regionfn is not None:
        def _rcount(state, buf, count):
            err, n = region_countfn(state, buf, count)
            if err != MPI_SUCCESS:
                raise _callback_failed(err, "region_countfn")
            return n

        def _region(state, buf, count, region_count):
            err, bases, lens, types = regionfn(state, buf, count, region_count)
            if err != MPI_SUCCESS:
                raise _callback_failed(err, "regionfn")
            types = types or [BYTE] * len(bases)
            return [Region(b, nbytes=int(ln), datatype=t)
                    for b, ln, t in zip(bases, lens, types)]

    _state = None
    if statefn is not None:
        def _state(ctx, buf, count):
            err, state = statefn(ctx, buf, count)
            if err != MPI_SUCCESS:
                raise _callback_failed(err, "statefn")
            return state

    _free = None
    if freefn is not None:
        def _free(state):
            err = freefn(state)
            if err != MPI_SUCCESS:
                raise _callback_failed(err, "freefn")

    try:
        dtype = type_create_custom(
            query_fn=_query, pack_fn=_pack, unpack_fn=_unpack,
            region_count_fn=_rcount, region_fn=_region,
            state_fn=_state, state_free_fn=_free,
            context=context, inorder=bool(inorder), name="capi:custom")
    except (TypeError, ReproError) as exc:
        return _code_of(exc) if isinstance(exc, MPIError) else MPI_ERR_ARG, None
    return MPI_SUCCESS, dtype


def MPI_Comm_rank(comm: Communicator) -> tuple[int, int]:
    return MPI_SUCCESS, comm.rank


def MPI_Comm_size(comm: Communicator) -> tuple[int, int]:
    return MPI_SUCCESS, comm.size


def MPI_Send(comm: Communicator, buf: Any, count: int, datatype: Datatype,
             dest: int, tag: int) -> int:
    try:
        comm.send(buf, dest, tag, datatype=datatype, count=count)
    except ReproError as exc:
        return _code_of(exc)
    return MPI_SUCCESS


def MPI_Recv(comm: Communicator, buf: Any, count: int, datatype: Datatype,
             source: int, tag: int) -> tuple[int, Optional[Status]]:
    try:
        status = comm.recv(buf, source, tag, datatype=datatype, count=count)
    except ReproError as exc:
        return _code_of(exc), None
    return MPI_SUCCESS, status


def MPI_Isend(comm: Communicator, buf: Any, count: int, datatype: Datatype,
              dest: int, tag: int) -> tuple[int, Optional[Request]]:
    try:
        return MPI_SUCCESS, comm.isend(buf, dest, tag, datatype=datatype,
                                       count=count)
    except ReproError as exc:
        return _code_of(exc), None


def MPI_Irecv(comm: Communicator, buf: Any, count: int, datatype: Datatype,
              source: int, tag: int) -> tuple[int, Optional[Request]]:
    try:
        return MPI_SUCCESS, comm.irecv(buf, source, tag, datatype=datatype,
                                       count=count)
    except ReproError as exc:
        return _code_of(exc), None


def MPI_Wait(request: Request) -> tuple[int, Optional[Status]]:
    try:
        return MPI_SUCCESS, request.wait()
    except ReproError as exc:
        return _code_of(exc), None


def MPI_Test(request: Request) -> tuple[int, int]:
    try:
        return MPI_SUCCESS, int(request.test())
    except ReproError as exc:
        return _code_of(exc), 0


def MPI_Probe(comm: Communicator, source: int, tag: int
              ) -> tuple[int, Optional[Status]]:
    try:
        return MPI_SUCCESS, comm.probe(source, tag)
    except ReproError as exc:
        return _code_of(exc), None


def MPI_Barrier(comm: Communicator) -> int:
    try:
        comm.barrier()
    except ReproError as exc:
        return _code_of(exc)
    return MPI_SUCCESS
