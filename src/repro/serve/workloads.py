"""Canned SPMD job bodies for the job service CLI, tests and chaos runs.

Everything here is a *module-level* function (specialised with
:func:`functools.partial`), never a closure: the ``shm`` backend forks one
process per rank and pickles the rank function across, and closures don't
pickle.  The same property keeps chaos-run job specs trivially
serialisable for reports.

Each builder returns a single-callable SPMD body (every rank runs it,
branching on ``comm.rank``) sized so thousands of jobs finish in seconds:
the service benchmark measures *scheduler* overhead, not pack bandwidth —
the perf corpus already covers that.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from ..types import make_struct_simple, struct_simple_datatype

__all__ = ["pingpong_job", "ring_job", "struct_pingpong_job",
           "failing_job", "spin_job", "deadlock_job", "WORKLOADS",
           "make_workload_job"]


def _pingpong(comm, iters: int, nbytes: int):
    """Rank 0 <-> rank 1 byte pingpong; extra ranks idle (but are wired)."""
    sbuf = np.zeros(nbytes, dtype=np.uint8)
    rbuf = np.zeros(nbytes, dtype=np.uint8)
    if comm.rank == 0:
        sbuf[:] = 7
        for _ in range(iters):
            comm.send(sbuf, 1, 11)
            comm.recv(rbuf, 1, 12)
    elif comm.rank == 1:
        for _ in range(iters):
            comm.recv(rbuf, 0, 11)
            comm.send(rbuf, 0, 12)
    return int(rbuf[0])


def _ring(comm, iters: int, nbytes: int):
    """All ranks shift a message around the ring each iteration."""
    dst = (comm.rank + 1) % comm.size
    src = (comm.rank - 1) % comm.size
    sbuf = np.full(nbytes, comm.rank % 251, dtype=np.uint8)
    rbuf = np.zeros(nbytes, dtype=np.uint8)
    for _ in range(iters):
        sreq = comm.isend(sbuf, dst, 21)
        comm.recv(rbuf, src, 21)
        sreq.wait()
    return int(rbuf[0])


def _struct_pingpong(comm, iters: int, count: int):
    """Derived-datatype pingpong: exercises the PackPlan cache across jobs."""
    dtype = struct_simple_datatype()
    sbuf = make_struct_simple(count)
    rbuf = make_struct_simple(count)
    if comm.rank == 0:
        for _ in range(iters):
            comm.send(sbuf, 1, 31, datatype=dtype, count=count)
            comm.recv(rbuf, 1, 32, datatype=dtype, count=count)
    elif comm.rank == 1:
        for _ in range(iters):
            comm.recv(rbuf, 0, 31, datatype=dtype, count=count)
            comm.send(rbuf, 0, 32, datatype=dtype, count=count)
    return None


def _failing(comm, fail_rank: int, message: str):
    """Deterministic user failure on one rank (classification fodder).

    The doomed rank hits its bug before the send it owes rank
    ``fail_rank + 1``, so that peer blocks on the missing message — the
    abort propagates through the fabric, not just thread teardown.
    """
    buf = np.zeros(8, dtype=np.uint8)
    if comm.rank == fail_rank:
        if message is not None:
            raise ValueError(message)
        comm.send(buf, (fail_rank + 1) % comm.size, 41)
    elif comm.rank == (fail_rank + 1) % comm.size:
        comm.recv(buf, fail_rank, 41)
    return None


def _deadlock(comm, tag: int):
    """Everyone receives before sending: the classic distributed deadlock.

    Exists so quota tests can drive the wall-timeout path on every
    backend — including ``shm``, whose forked ranks need a picklable
    (module-level) function.
    """
    buf = np.zeros(8, dtype=np.uint8)
    comm.recv(buf, (comm.rank + 1) % comm.size, tag)
    comm.send(buf, (comm.rank + 1) % comm.size, tag)
    return None


def _spin(comm, iters: int, nbytes: int):
    """A long pingpong loop — the kill/timeout/budget target.

    Virtual time grows with every message, so a time budget cuts it at a
    deterministic iteration; wall time grows with every real send/recv,
    giving kills a wide window to land in.
    """
    return _pingpong(comm, iters, nbytes)


def pingpong_job(iters: int = 8, nbytes: int = 1024):
    return partial(_pingpong, iters=iters, nbytes=nbytes)


def ring_job(iters: int = 4, nbytes: int = 1024):
    return partial(_ring, iters=iters, nbytes=nbytes)


def struct_pingpong_job(iters: int = 4, count: int = 64):
    return partial(_struct_pingpong, iters=iters, count=count)


def failing_job(fail_rank: int = 0, message: str = "user bug"):
    return partial(_failing, fail_rank=fail_rank, message=message)


def spin_job(iters: int = 4096, nbytes: int = 4096):
    return partial(_spin, iters=iters, nbytes=nbytes)


def deadlock_job(tag: int = 90):
    return partial(_deadlock, tag=tag)


#: Name -> builder, the CLI's ``--workload`` vocabulary.
WORKLOADS = {
    "pingpong": pingpong_job,
    "ring": ring_job,
    "struct": struct_pingpong_job,
}


def make_workload_job(name: str, **kw):
    """Instantiate a named workload (CLI entry point)."""
    try:
        builder = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; available: "
            f"{', '.join(sorted(WORKLOADS))}") from None
    return builder(**kw)
