"""``repro-serve`` — drive the job service, optionally under chaos.

The CLI is the acceptance harness for the service's headline claim::

    repro-serve --jobs 10000 --chaos 0.2 --kill-every 97 --strict

runs ten thousand small jobs through a warm-worker service while a seeded
fraction of them carry rank-crash fault plans and every 97th running job
is killed mid-flight — then exits nonzero unless every pool buffer came
back, every job is accounted for, and no sanitized job leaked a request.

Chaos decisions use the CRC-draw discipline of
:class:`repro.ucp.faults.FaultPlan`: the same ``--seed`` reproduces the
same crash schedule, kill victims and backoff delays.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import zlib

from .service import JobService
from .spec import AdmissionError, JobSpec, JobStatus, QuotaPolicy, RetryPolicy
from .workloads import make_workload_job

__all__ = ["main", "run_service_load", "verify_report"]


def _draw(seed: int, kind: str, i: int) -> float:
    """Deterministic uniform draw in [0, 1) (FaultPlan's discipline)."""
    return zlib.crc32(f"{seed}|{kind}|{i}".encode("ascii")) / 0xFFFFFFFF


def _build_spec(i: int, args) -> JobSpec:
    chaotic = (args.chaos > 0 and args.nprocs >= 2
               and _draw(args.seed, "chaos", i) < args.chaos)
    faults = None
    reliability = None
    if chaotic:
        # Crash a non-root rank partway into the job's virtual timeline;
        # the victim and instant are seeded so replays match.
        victim = 1 + int(_draw(args.seed, "victim", i)
                         * max(1, args.nprocs - 1))
        victim = min(victim, args.nprocs - 1) or 1
        at = 2e-6 + _draw(args.seed, "at", i) * 40e-6
        faults = {"seed": args.seed + i, "crash": {victim: at}}
        reliability = True
    sanitize = (args.sanitize_every > 0
                and i % args.sanitize_every == 0
                and args.transport != "shm")
    return JobSpec(
        fn=make_workload_job(args.workload),
        name=f"{args.workload}-{i}",
        nprocs=args.nprocs,
        faults=faults,
        reliability=reliability,
        # Pristine retry: the crash was transient, so retries can succeed
        # and the retried/dead-letter split in the report is meaningful.
        retry_faults=None,
        sanitize=sanitize,
        quota=QuotaPolicy(wall_timeout=args.wall_timeout),
        retry=RetryPolicy(max_retries=args.retries, seed=args.seed,
                          base_delay=0.001, max_delay=0.05),
        tags={"chaotic": chaotic, "index": i},
    )


def run_service_load(args) -> dict:
    """Submit ``args.jobs`` jobs, kill some mid-flight, drain, report."""
    service = JobService(slots=args.slots, max_queue=args.max_queue,
                         transport=args.transport)
    killer_stop = threading.Event()

    killed_ids: set[int] = set()

    def killer():
        """Kill every running job whose index is a --kill-every multiple."""
        while not killer_stop.is_set():
            for handle in service.inflight():
                idx = handle.spec.tags.get("index", -1)
                if idx > 0 and idx % args.kill_every == 0 \
                        and handle.id not in killed_ids \
                        and handle.status == JobStatus.RUNNING:
                    if handle.kill("chaos kill"):
                        killed_ids.add(handle.id)
                        service.metrics.inc("kills")
            killer_stop.wait(0.002)

    killer_thread = None
    if args.kill_every > 0:
        # Killable jobs need a detector; chaos mode provides one on the
        # chaotic fraction. Kills on pristine jobs just return False.
        killer_thread = threading.Thread(target=killer, name="chaos-killer",
                                         daemon=True)
        killer_thread.start()

    shed = 0
    t0 = time.monotonic()
    for i in range(args.jobs):
        spec = _build_spec(i, args)
        while True:
            try:
                service.submit(spec)
                break
            except AdmissionError as exc:
                if exc.reason != "saturated":
                    raise
                # Load shed: the service said back off, so back off.
                shed += 1
                time.sleep(0.001)
    service.wait_idle()
    elapsed = time.monotonic() - t0
    if killer_thread is not None:
        killer_stop.set()
        killer_thread.join()
    report = service.shutdown(drain=True)
    report["load"] = {"jobs": args.jobs, "elapsed_s": elapsed,
                      "jobs_per_s": args.jobs / max(elapsed, 1e-9),
                      "saturation_backoffs": shed,
                      "kill_every": args.kill_every,
                      "chaos": args.chaos, "seed": args.seed}
    return report


def verify_report(report: dict) -> list[str]:
    """The strict-mode invariants; returns violation messages."""
    out = []
    jobs = report["jobs"]
    terminal = (jobs["completed"] + jobs["failed"] + jobs["dead_lettered"]
                + jobs["cancelled"])
    if terminal != jobs["accepted"]:
        out.append(f"accounting hole: accepted={jobs['accepted']} but "
                   f"terminal outcomes sum to {terminal}")
    if jobs["pool_leaks"]:
        out.append(f"{jobs['pool_leaks']} job(s) left pool buffers "
                   f"outstanding")
    if jobs["leaked_requests"]:
        out.append(f"sanitizer found {jobs['leaked_requests']} leaked "
                   f"request(s) (RPD420/421)")
    bank = report["pool_bank"]
    if bank["banked_outstanding"]:
        out.append(f"warm bank holds {bank['banked_outstanding']} "
                   f"outstanding buffer(s) after drain")
    if bank["checked_out"]:
        out.append(f"{bank['checked_out']} tracker set(s) never returned "
                   f"to the bank")
    if report["queue_depth"] or report["inflight"]:
        out.append(f"drain left queue_depth={report['queue_depth']} "
                   f"inflight={report['inflight']}")
    return out


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-serve",
        description="Run a job-service load (optionally chaotic) and "
                    "report service metrics.")
    p.add_argument("--jobs", type=int, default=200,
                   help="number of jobs to submit (default 200)")
    p.add_argument("--workload", default="pingpong",
                   help="job body: pingpong, ring or struct")
    p.add_argument("--nprocs", type=int, default=2)
    p.add_argument("--slots", type=int, default=2,
                   help="concurrent scheduler slots (default 2)")
    p.add_argument("--max-queue", type=int, default=64,
                   help="admission queue depth; submissions beyond it are "
                        "load-shed and resubmitted (default 64)")
    p.add_argument("--transport", default=None,
                   help="backend: inproc (default), asyncio, shm")
    p.add_argument("--chaos", type=float, default=0.0,
                   help="fraction of jobs carrying a seeded rank-crash "
                        "fault plan (default 0)")
    p.add_argument("--kill-every", type=int, default=0,
                   help="kill every Nth running job mid-flight (0 = off)")
    p.add_argument("--sanitize-every", type=int, default=0,
                   help="attach the sanitizer to every Nth job (0 = off)")
    p.add_argument("--retries", type=int, default=2,
                   help="retry budget for retryable failures (default 2)")
    p.add_argument("--wall-timeout", type=float, default=30.0)
    p.add_argument("--seed", type=int, default=0,
                   help="seed for chaos draws and retry jitter")
    p.add_argument("--report", default=None, metavar="PATH",
                   help="write the JSON report here ('-' for stdout)")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero unless pool balance, request "
                        "accounting and job accounting all close")
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    report = run_service_load(args)
    doc = json.dumps(report, indent=2, sort_keys=True)
    if args.report == "-":
        print(doc)
    elif args.report:
        with open(args.report, "w") as f:
            f.write(doc + "\n")
    jobs = report["jobs"]
    print(f"jobs: {jobs['accepted']} accepted, {jobs['completed']} "
          f"completed, {jobs['failed']} failed, {jobs['dead_lettered']} "
          f"dead-lettered, {jobs['cancelled']} cancelled "
          f"({report['load']['jobs_per_s']:.0f} jobs/s)")
    print(f"robustness: {jobs['retries']} retries, {jobs['kills']} kills, "
          f"{jobs['pool_leaks']} pool leaks, "
          f"{report['pool_bank']['banked_outstanding']} outstanding "
          f"pooled buffers after drain")
    if args.strict:
        violations = verify_report(report)
        for v in violations:
            print(f"STRICT VIOLATION: {v}", file=sys.stderr)
        if violations:
            return 1
        print("strict checks: all invariants hold")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
