"""repro.serve — the fault-hardened job service over warm workers.

The "serving heavy traffic" half of the robustness story: a long-lived
:class:`JobService` schedules queues of SPMD jobs onto recycled worker
state (buffer pools, the PackPlan cache) with admission control, per-job
quotas, classified retries with backoff, dead-lettering, mid-flight kills
and graceful drain — and proves after every job (and after 10k chaos
jobs) that not one pool buffer leaked.

See ``docs/serve.md`` for the design and the ``repro-serve`` CLI for the
chaos harness.
"""

from .metrics import LatencyStats, ServiceMetrics, percentile
from .service import JobHandle, JobService, WarmSetBank
from .spec import (DETERMINISTIC, QUOTA, RETRYABLE, SAME_FAULTS,
                   AdmissionError, JobSpec, JobStatus, QuotaPolicy,
                   RetryPolicy, classify_failure)

__all__ = [
    "JobService", "JobHandle", "WarmSetBank",
    "JobSpec", "JobStatus", "QuotaPolicy", "RetryPolicy",
    "AdmissionError", "classify_failure",
    "RETRYABLE", "DETERMINISTIC", "QUOTA", "SAME_FAULTS",
    "ServiceMetrics", "LatencyStats", "percentile",
]
