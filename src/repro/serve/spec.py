"""Job specifications, quotas, retry policy and failure classification.

A :class:`JobSpec` is everything :func:`repro.mpi.run` needs plus the
robustness envelope the service wraps around it: a :class:`QuotaPolicy`
(wall-clock timeout, virtual-time budget, transient-memory ceiling) and a
:class:`RetryPolicy` (budgeted exponential backoff with deterministic
jitter).  :func:`classify_failure` is the retry engine's brain — it decides
whether a dead job died of something worth retrying (a fault-plan crash, a
reliability exhaustion, a mid-flight kill: the ``MPI_ERR_PROC_FAILED``
family) or of something deterministic (a user exception, a type error, a
blown quota) that would fail identically on every replay.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..errors import (MemoryQuotaError, MPIError, ProcFailedError,
                      ProcFailedPendingError, RankCrashError, ReproError,
                      RuntimeAbort, TimeBudgetExceeded)

__all__ = [
    "AdmissionError", "QuotaPolicy", "RetryPolicy", "JobSpec", "JobStatus",
    "RETRYABLE", "DETERMINISTIC", "QUOTA", "classify_failure",
    "SAME_FAULTS",
]


class AdmissionError(ReproError):
    """The service refused a job at the front door.

    ``reason`` is a stable machine-readable code (the metrics bucket):
    ``saturated`` (queue at max depth — load shedding), ``draining`` /
    ``stopped`` (shutdown in progress), ``invalid-quota`` (zero/negative
    timeout or budget), ``invalid-nprocs``, ``invalid-fn``.
    """

    def __init__(self, reason: str, message: str):
        self.reason = reason
        super().__init__(f"[{reason}] {message}")


class JobStatus:
    """Lifecycle states of a job handle (plain strings, JSON-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    #: Deterministic or quota failure — retrying would reproduce it.
    FAILED = "failed"
    #: Retry budget exhausted on a retryable failure class.
    DEAD_LETTERED = "dead_lettered"
    #: Removed from the queue by drain/kill before it could run.
    CANCELLED = "cancelled"

    TERMINAL = frozenset({COMPLETED, FAILED, DEAD_LETTERED, CANCELLED})


#: Failure classes (:func:`classify_failure` results).
RETRYABLE = "retryable"
DETERMINISTIC = "deterministic"
QUOTA = "quota"


@dataclass(frozen=True)
class QuotaPolicy:
    """Per-job resource ceilings enforced by the service.

    ``wall_timeout`` bounds real elapsed seconds (the deadlock backstop);
    ``time_budget`` bounds *virtual* fabric seconds per rank, enforced at
    the clock so a rank stops exactly at the boundary; ``max_pool_bytes``
    bounds live transient allocations per rank, enforced before any pool
    buffer is handed out.
    """

    wall_timeout: float = 30.0
    time_budget: Optional[float] = None
    max_pool_bytes: Optional[int] = None

    def problems(self) -> list[str]:
        """Validation messages; an empty list means admissible."""
        out = []
        if self.wall_timeout is None or self.wall_timeout <= 0:
            out.append(f"wall_timeout must be positive, got "
                       f"{self.wall_timeout!r}")
        if self.time_budget is not None and self.time_budget <= 0:
            out.append(f"time_budget must be positive, got "
                       f"{self.time_budget!r}")
        if self.max_pool_bytes is not None and self.max_pool_bytes <= 0:
            out.append(f"max_pool_bytes must be positive, got "
                       f"{self.max_pool_bytes!r}")
        return out


@dataclass(frozen=True)
class RetryPolicy:
    """Budgeted exponential backoff with deterministic jitter.

    ``delay_for(attempt, key)`` is a pure function of ``(seed, key,
    attempt)`` — the same CRC-draw discipline as
    :class:`repro.ucp.faults.FaultPlan` — so a replayed chaos run backs
    off identically and tests can assert exact schedules.  ``attempt`` is
    0-based: the delay before retry N of a job that has failed N times.
    """

    max_retries: int = 2
    base_delay: float = 0.005
    max_delay: float = 0.25
    #: Fractional jitter: the delay is scaled by ``1 + jitter * draw``
    #: with ``draw`` uniform in [0, 1).
    jitter: float = 0.5
    #: Whether a wall-clock timeout is worth retrying (off by default:
    #: a deadlock reproduces, and the timed-out attempt's workers must be
    #: retired, making timeout retries doubly expensive).
    retry_on_timeout: bool = False
    seed: int = 0

    def delay_for(self, attempt: int, key: str) -> float:
        raw = min(self.base_delay * (2 ** attempt), self.max_delay)
        draw = zlib.crc32(f"{self.seed}|{key}|{attempt}".encode("ascii")) \
            / 0xFFFFFFFF
        return raw * (1.0 + self.jitter * draw)


class _SameFaults:
    """Sentinel: retries reuse the original fault plan."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SAME_FAULTS"


#: Default for :attr:`JobSpec.retry_faults`: replay the same plan.  Pass
#: None to retry on a pristine fabric (transient-fault semantics: the
#: crash happened once), or a different plan for staged chaos.
SAME_FAULTS = _SameFaults()


@dataclass
class JobSpec:
    """One job: the SPMD program plus its robustness envelope."""

    fn: Callable | Sequence[Callable]
    name: str = "job"
    nprocs: int = 2
    params: Any = None
    engine_config: Any = None
    faults: Any = None
    reliability: Any = None
    #: Backend override; None inherits the service's transport.
    transport: Optional[str] = None
    quota: QuotaPolicy = field(default_factory=QuotaPolicy)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Fault plan for retry attempts (attempt >= 1).  The default,
    #: :data:`SAME_FAULTS`, replays the original plan — deterministic
    #: crashes then deterministically exhaust the retry budget and land
    #: in the dead-letter list, which is sometimes exactly the test.
    retry_faults: Any = SAME_FAULTS
    sanitize: bool = False
    trace_messages: bool = False
    #: Free-form labels carried through to reports.
    tags: dict = field(default_factory=dict)

    def problems(self) -> list[str]:
        out = self.quota.problems()
        if self.nprocs < 1:
            out.append(f"nprocs must be >= 1, got {self.nprocs}")
        if callable(self.fn):
            pass
        elif isinstance(self.fn, (list, tuple)):
            if len(self.fn) != self.nprocs:
                out.append(f"got {len(self.fn)} rank functions for "
                           f"nprocs={self.nprocs}")
        else:
            out.append(f"fn must be a callable or a sequence of rank "
                       f"functions, got {type(self.fn).__name__}")
        if self.retry.max_retries < 0:
            out.append(f"max_retries must be >= 0, got "
                       f"{self.retry.max_retries}")
        return out

    def faults_for_attempt(self, attempt: int) -> Any:
        if attempt == 0 or isinstance(self.retry_faults, _SameFaults):
            return self.faults
        return self.retry_faults


def _classify_one(exc: BaseException) -> str:
    if isinstance(exc, (TimeBudgetExceeded, MemoryQuotaError, TimeoutError)):
        return QUOTA
    if isinstance(exc, (ProcFailedError, ProcFailedPendingError,
                        RankCrashError)):
        return RETRYABLE
    if isinstance(exc, MPIError):
        # Every other MPI error class (truncation, type mismatch, user
        # callback failure...) reproduces on replay.
        return DETERMINISTIC
    return DETERMINISTIC


def classify_failure(exc: BaseException) -> tuple[str, BaseException]:
    """Classify a job failure; returns ``(class, root_cause)``.

    For a :class:`~repro.errors.RuntimeAbort` the per-rank failures are
    classified individually and the *most deterministic* class wins
    (``deterministic`` > ``quota`` > ``retryable``): when rank 0 raises
    ``ValueError`` and its peers observe ``MPI_ERR_PROC_FAILED`` through
    the failure detector, the proc-failed errors are collateral — retrying
    would replay the ``ValueError``.  The returned root cause is the
    highest-precedence failure (lowest rank breaking ties), which is what
    a dead-letter entry records.
    """
    if isinstance(exc, RuntimeAbort):
        precedence = {DETERMINISTIC: 0, QUOTA: 1, RETRYABLE: 2}
        best: tuple[int, int, str, BaseException] | None = None
        for rank, failure in sorted(exc.failures.items()):
            cls = _classify_one(failure)
            entry = (precedence[cls], rank, cls, failure)
            if best is None or entry[:2] < best[:2]:
                best = entry
        if best is None:  # pragma: no cover - RuntimeAbort is never empty
            return DETERMINISTIC, exc
        return best[2], best[3]
    return _classify_one(exc), exc
