"""Thread-safe service metrics: counters, latency percentiles, throughput.

The job service is the "heavy traffic" story, so its observability follows
the shape production job services expose: monotonically increasing counters
(jobs accepted/rejected/retried/dead-lettered), bounded latency reservoirs
with percentile summaries (queue wait and run time), and aggregate
throughput (jobs/s and delivered msgs/s) derived from a single service
epoch.  Everything is guarded by one lock — metric updates are far off the
fabric's hot path — and :meth:`ServiceMetrics.snapshot` returns plain JSON
data, which is what the ``repro-serve --report`` endpoint serializes.
"""

from __future__ import annotations

import threading
import time
from collections import deque


def percentile(sample: list[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sorted sample."""
    if not sample:
        return 0.0
    rank = max(0, min(len(sample) - 1, int(round(q * (len(sample) - 1)))))
    return sample[rank]


class LatencyStats:
    """A bounded latency reservoir with running count/total/max.

    Keeps the most recent ``maxlen`` observations for percentile queries
    (a 10k-job chaos run must not hold 10k floats per metric forever was
    never the risk — but an unbounded list in a service that "serves
    heavy traffic" is exactly the slow leak this PR exists to prevent),
    while count/total/max stay exact over the full history.

    Thread contract: callers hold the owning registry's lock.
    """

    def __init__(self, maxlen: int = 8192):
        self._sample: deque[float] = deque(maxlen=maxlen)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        self._sample.append(seconds)
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    def snapshot(self) -> dict:
        sample = sorted(self._sample)
        return {
            "count": self.count,
            "mean_ms": (self.total / self.count * 1e3) if self.count else 0.0,
            "p50_ms": percentile(sample, 0.50) * 1e3,
            "p90_ms": percentile(sample, 0.90) * 1e3,
            "p99_ms": percentile(sample, 0.99) * 1e3,
            "max_ms": self.max * 1e3,
        }


class ServiceMetrics:
    """All counters and reservoirs of one :class:`~repro.serve.JobService`.

    Counter vocabulary (every key always present in a snapshot):

    * ``submitted``/``accepted``/``rejected`` — admission control;
      rejections are additionally bucketed by reason code.
    * ``completed``/``failed``/``dead_lettered``/``cancelled`` — terminal
      outcomes (``failed`` splits into ``failed_deterministic`` and
      ``failed_quota``).
    * ``retries`` — attempts beyond the first; ``kills`` — mid-flight
      kill requests that reached a live job.
    * ``pool_leaks``/``pools_retired`` — warm-set hygiene: jobs that
      returned an unbalanced pool, and tracker sets discarded because a
      timed-out job might still touch them.
    * ``sanitizer_findings``/``leaked_requests`` — aggregated from
      sanitized jobs (RPD420/421 are the leak codes).
    """

    _COUNTERS = (
        "submitted", "accepted", "rejected",
        "completed", "failed", "failed_deterministic", "failed_quota",
        "dead_lettered", "cancelled", "retries", "kills",
        "pool_leaks", "pools_retired",
        "sanitizer_findings", "leaked_requests",
    )

    def __init__(self):
        self._lock = threading.Lock()
        self._counters = {name: 0 for name in self._COUNTERS}
        self._rejected_by_reason: dict[str, int] = {}
        self._queue_latency = LatencyStats()
        self._run_latency = LatencyStats()
        self._msgs_delivered = 0
        self._virtual_seconds = 0.0
        self._epoch = time.monotonic()

    def inc(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] += n

    def get(self, name: str) -> int:
        with self._lock:
            return self._counters[name]

    def rejected(self, reason: str) -> None:
        with self._lock:
            self._counters["rejected"] += 1
            self._rejected_by_reason[reason] = \
                self._rejected_by_reason.get(reason, 0) + 1

    def observe_queue_latency(self, seconds: float) -> None:
        with self._lock:
            self._queue_latency.record(seconds)

    def observe_run(self, seconds: float, msgs: int,
                    virtual_seconds: float) -> None:
        with self._lock:
            self._run_latency.record(seconds)
            self._msgs_delivered += msgs
            self._virtual_seconds += virtual_seconds

    def snapshot(self) -> dict:
        with self._lock:
            elapsed = max(time.monotonic() - self._epoch, 1e-9)
            counters = dict(self._counters)
            return {
                "jobs": counters,
                "rejected_by_reason": dict(self._rejected_by_reason),
                "queue_latency": self._queue_latency.snapshot(),
                "run_latency": self._run_latency.snapshot(),
                "throughput": {
                    "elapsed_s": elapsed,
                    "jobs_per_s": counters["completed"] / elapsed,
                    "msgs_delivered": self._msgs_delivered,
                    "msgs_per_s": self._msgs_delivered / elapsed,
                    "virtual_seconds": self._virtual_seconds,
                },
            }
