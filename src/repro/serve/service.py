"""The fault-hardened job service: warm workers, quotas, retries, drain.

:class:`JobService` is a long-lived scheduler that accepts a bounded queue
of :class:`~repro.serve.spec.JobSpec` and runs each on one of ``slots``
scheduler threads through :func:`repro.mpi.run`.  What makes it a
*service* rather than a loop over ``run()``:

* **Warm worker sets** — each job's per-rank
  :class:`~repro.ucp.memory.MemoryTracker` (and its size-classed
  :class:`~repro.ucp.memory.BufferPool`) comes from a :class:`WarmSetBank`
  keyed by ``nprocs`` and goes back after the job, so pooled buffers and
  the process-wide PackPlan LRU survive across jobs.  Between jobs every
  tracker passes :meth:`~repro.ucp.memory.MemoryTracker.reset_for_job`,
  which *asserts* pool balance — a leak in job N is attributed to job N.
* **Admission control** — a bounded queue with load shedding: when the
  queue is at ``max_queue`` the submit is rejected with a reason instead
  of absorbing unbounded backlog.
* **Quotas** — wall-clock timeout (the deadlock backstop), a virtual-time
  budget enforced *at the clock* (ranks stop exactly at the boundary),
  and a transient-memory ceiling enforced before any buffer is handed
  out.
* **Retry engine** — failures are classified
  (:func:`~repro.serve.spec.classify_failure`); only the
  ``MPI_ERR_PROC_FAILED`` family retries, with budgeted exponential
  backoff + deterministic jitter; budget exhaustion lands the job in the
  dead-letter list with its last error attached.
* **Chaos kills** — :meth:`JobHandle.kill` aborts a *running* job through
  the fabric's ULFM failure detector: every blocked wait raises
  ``MPI_ERR_PROC_FAILED`` in bounded time, rank threads join cleanly, and
  teardown returns every pool buffer — a kill leaks nothing.
* **Drain semantics** — :meth:`JobService.shutdown` stops admission,
  finishes in-flight jobs (or kills them with ``drain=False``), cancels
  queued ones and returns a full accounting.

Thread contract: the queue, lifecycle state and in-flight table are
guarded by ``self._cv`` (one condition around one lock); each
:class:`JobHandle`'s mutable fields are guarded by the handle's own lock;
:class:`WarmSetBank` has its own lock.  Scheduler slots never call user
code or ``run()`` while holding any of them.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from ..core.typecache import plan_cache_info
from ..errors import PoolLeakError, RuntimeAbort
from ..mpi.runtime import JobResult, run
from ..ucp.faults import FaultPlan
from ..ucp.memory import MemoryTracker
from ..ucp.netsim import BudgetedClock
from ..ucp.transport import TransportUnavailableError, create_transport
from .metrics import ServiceMetrics
from .spec import (QUOTA, RETRYABLE, AdmissionError, JobSpec, JobStatus,
                   classify_failure)

__all__ = ["JobService", "JobHandle", "WarmSetBank"]


class WarmSetBank:
    """Recycled per-rank memory-tracker sets, keyed by rank count.

    ``checkout(nprocs)`` hands out a warm set when one is banked (the
    pools' free lists still hold the previous jobs' buffers) or builds a
    fresh one; ``checkin`` re-arms every tracker through
    :meth:`~repro.ucp.memory.MemoryTracker.reset_for_job` and banks it.
    A set that fails the balance assertion — or that belonged to a
    timed-out job whose abandoned rank threads might still touch it — is
    *retired* (dropped) instead of banked, so one bad job can never
    poison the warm path for its successors.
    """

    def __init__(self, max_sets_per_size: int = 8):
        self._lock = threading.Lock()
        self._free: dict[int, list[list[MemoryTracker]]] = {}
        self.max_sets_per_size = max_sets_per_size
        self.created = 0
        self.warm_hits = 0
        self.retired = 0
        self.checked_out = 0

    def checkout(self, nprocs: int) -> list[MemoryTracker]:
        with self._lock:
            sets = self._free.get(nprocs)
            if sets:
                self.warm_hits += 1
                self.checked_out += 1
                return sets.pop()
            self.created += 1
            self.checked_out += 1
        return [MemoryTracker() for _ in range(nprocs)]

    def checkin(self, trackers: list[MemoryTracker], job: str,
                dirty: bool = False) -> Optional[PoolLeakError]:
        """Return a set; banks it warm, or retires it.

        Returns the :class:`~repro.errors.PoolLeakError` when the job
        left buffers outstanding (the set is retired and the leak is the
        caller's to account), None otherwise.
        """
        with self._lock:
            self.checked_out -= 1
        if dirty:
            with self._lock:
                self.retired += 1
            return None
        leak: Optional[PoolLeakError] = None
        for tracker in trackers:
            try:
                tracker.reset_for_job(job)
            except PoolLeakError as exc:
                leak = exc
        with self._lock:
            if leak is not None:
                self.retired += 1
                return leak
            sets = self._free.setdefault(len(trackers), [])
            if len(sets) < self.max_sets_per_size:
                sets.append(trackers)
            else:
                self.retired += 1
        return None

    def snapshot(self) -> dict:
        with self._lock:
            banked = {n: len(sets) for n, sets in self._free.items() if sets}
            outstanding = sum(
                t.pool.snapshot()["outstanding"]
                for sets in self._free.values() for s in sets for t in s)
            pooled_bytes = sum(
                t.pool.snapshot()["pooled_bytes"]
                for sets in self._free.values() for s in sets for t in s)
            return {"created": self.created, "warm_hits": self.warm_hits,
                    "retired": self.retired,
                    "checked_out": self.checked_out,
                    "banked_sets": banked,
                    "banked_outstanding": outstanding,
                    "banked_pooled_bytes": pooled_bytes}


class JobHandle:
    """The caller's view of one submitted job.

    All mutable fields are guarded by the handle's own lock; readers use
    the snapshot properties.  ``wait()`` blocks on a terminal state.
    """

    def __init__(self, job_id: int, spec: JobSpec):
        self.id = job_id
        self.spec = spec
        self._lock = threading.Lock()
        self._status = JobStatus.QUEUED
        self._done = threading.Event()
        self._detector = None
        self._kill_reason: Optional[str] = None
        self._error: Optional[BaseException] = None
        self._error_class: Optional[str] = None
        self.attempts = 0
        self.result: Optional[JobResult] = None
        self.submitted_at = time.monotonic()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    # -- read side ---------------------------------------------------------

    @property
    def status(self) -> str:
        with self._lock:
            return self._status

    @property
    def error(self) -> Optional[BaseException]:
        with self._lock:
            return self._error

    @property
    def error_class(self) -> Optional[str]:
        """Failure classification (``retryable``/``deterministic``/
        ``quota``) of the last failed attempt, None while healthy."""
        with self._lock:
            return self._error_class

    @property
    def queue_latency(self) -> Optional[float]:
        with self._lock:
            if self.started_at is None:
                return None
            return self.started_at - self.submitted_at

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._done.wait(timeout=timeout)

    # -- state transitions (service threads) -------------------------------

    def _set_status(self, status: str) -> None:
        with self._lock:
            self._status = status
            if status == JobStatus.RUNNING and self.started_at is None:
                self.started_at = time.monotonic()
            if status in JobStatus.TERMINAL:
                self.finished_at = time.monotonic()
        if status in JobStatus.TERMINAL:
            self._done.set()

    def _record_failure(self, cls: str, root: BaseException) -> None:
        with self._lock:
            self._error = root
            self._error_class = cls

    # -- kill machinery ----------------------------------------------------

    def kill(self, reason: str = "killed by service") -> bool:
        """Request a mid-flight kill of a *running* job.

        Aborts the job through its fabric's ULFM failure detector: every
        blocked wait observes ``job aborted`` and raises
        ``MPI_ERR_PROC_FAILED`` in bounded time.  The kill is one-shot —
        it takes down the current attempt; whether the job retries is the
        retry policy's call (a kill is classified retryable, like any
        proc failure).  Returns False when the job is already terminal or
        has no live fault detector to deliver the abort (a pristine
        fabric has no detector; give the job ``reliability=True`` to make
        it killable).  Queued jobs cannot be killed here — drain the
        service, or wait for them to start.
        """
        with self._lock:
            if self._status in JobStatus.TERMINAL:
                return False
            detector = self._detector
            if detector is None:
                if self._status == JobStatus.RUNNING:
                    return False
                # Not started yet: arm the kill; the next attempt's
                # fabric hook fires it the moment the detector exists.
                self._kill_reason = reason
                return True
        detector.abort_job(f"job killed: {reason}")
        return True

    def _kill_armed(self) -> bool:
        """True when a kill was requested before any detector existed."""
        with self._lock:
            return self._kill_reason is not None

    def _attach_detector(self, detector) -> None:
        """Fabric hook half of the kill path (driver thread, pre-start)."""
        with self._lock:
            self._detector = detector
            pending = self._kill_reason
            self._kill_reason = None
        if pending is not None and detector is not None:
            detector.abort_job(f"job killed: {pending}")

    def _detach_detector(self) -> None:
        with self._lock:
            self._detector = None

    def describe(self) -> dict:
        """JSON-friendly summary (the report/dead-letter row)."""
        with self._lock:
            err = self._error
            return {
                "id": self.id,
                "name": self.spec.name,
                "status": self._status,
                "attempts": self.attempts,
                "error": (f"{type(err).__name__}: {err}"
                          if err is not None else None),
                "error_class": self._error_class,
                "queue_latency_ms": (
                    (self.started_at - self.submitted_at) * 1e3
                    if self.started_at is not None else None),
                "tags": dict(self.spec.tags),
            }


class JobService:
    """A long-lived scheduler running jobs over warm workers.

    Parameters
    ----------
    slots:
        Scheduler threads (jobs running concurrently).  Each slot drives
        one job at a time; the job's ranks are the transport's business.
    max_queue:
        Bounded queue depth; submissions beyond it are load-shed with
        :class:`~repro.serve.spec.AdmissionError` ``[saturated]``.
    transport:
        Default backend for jobs that don't override it.  Warm worker
        reuse, budget clocks and kill handles need
        ``supports_warm_pools`` (inproc/asyncio); on other backends jobs
        still run with quotas enforced post-hoc.
    """

    def __init__(self, slots: int = 2, max_queue: int = 64,
                 transport: Optional[str] = None, name: str = "repro.serve"):
        if slots < 1:
            raise ValueError(f"need at least one slot, got {slots}")
        if max_queue < 1:
            raise ValueError(f"need a positive queue depth, got {max_queue}")
        self.name = name
        self.slots = slots
        self.max_queue = max_queue
        self._transport_name = transport
        #: Probe instance: capability flags only, never runs a job.
        probe = create_transport(transport)
        self.transport = probe.name
        self._warm_capable = probe.supports_warm_pools
        self.metrics = ServiceMetrics()
        self.bank = WarmSetBank()
        self._cv = threading.Condition()
        self._queue: list[JobHandle] = []
        self._inflight: dict[int, JobHandle] = {}
        self._state = "running"
        self._next_id = 0
        self.dead_letters: list[JobHandle] = []
        self._started_at = time.monotonic()
        self._threads = [
            threading.Thread(target=self._slot_loop, args=(i,),
                             name=f"{name}-slot-{i}", daemon=True)
            for i in range(slots)]
        for t in self._threads:
            t.start()

    # -- admission ---------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobHandle:
        """Admit one job or raise :class:`AdmissionError` with a reason.

        Admission is where invalid quotas die: a zero or negative
        wall-clock timeout (or budget/ceiling) is rejected here, never
        scheduled.  A full queue is load-shed (``[saturated]``) — the
        caller decides whether to back off and resubmit.
        """
        self.metrics.inc("submitted")
        problems = spec.problems()
        if problems:
            reason = "invalid-quota" if spec.quota.problems() else (
                "invalid-nprocs" if spec.nprocs < 1 else "invalid-fn")
            self.metrics.rejected(reason)
            raise AdmissionError(reason,
                                 f"job {spec.name!r}: " + "; ".join(problems))
        with self._cv:
            if self._state != "running":
                self.metrics.rejected(self._state)
                raise AdmissionError(
                    self._state,
                    f"job {spec.name!r}: service is {self._state}, not "
                    f"accepting new jobs")
            if len(self._queue) >= self.max_queue:
                self.metrics.rejected("saturated")
                raise AdmissionError(
                    "saturated",
                    f"job {spec.name!r}: queue depth {len(self._queue)} is "
                    f"at max_queue={self.max_queue}; load shed — back off "
                    f"and resubmit")
            self._next_id += 1
            handle = JobHandle(self._next_id, spec)
            self._queue.append(handle)
            self.metrics.inc("accepted")
            self._cv.notify()
        return handle

    # -- scheduler slots ---------------------------------------------------

    def _slot_loop(self, slot: int) -> None:
        while True:
            with self._cv:
                while not self._queue and self._state == "running":
                    self._cv.wait(timeout=0.5)
                if not self._queue:
                    # draining/stopping with an empty queue: slot retires.
                    return
                handle = self._queue.pop(0)
                self._inflight[handle.id] = handle
            try:
                handle._set_status(JobStatus.RUNNING)
                latency = handle.queue_latency
                if latency is not None:
                    self.metrics.observe_queue_latency(latency)
                self._execute(handle, slot)
            finally:
                with self._cv:
                    self._inflight.pop(handle.id, None)
                    self._cv.notify_all()

    def _execute(self, handle: JobHandle, slot: int) -> None:
        """Run one job through the retry engine to a terminal state."""
        spec = handle.spec
        attempt = 0
        while True:
            t0 = time.monotonic()
            error = self._run_attempt(handle, attempt)
            elapsed = time.monotonic() - t0
            handle.attempts = attempt + 1
            if error is None:
                result = handle.result
                msgs = sum(result.msgs_delivered) if result is not None \
                    else 0
                vtime = result.max_clock if result is not None else 0.0
                self.metrics.observe_run(elapsed, msgs, vtime)
                self._aggregate_sanitizer(result)
                handle._set_status(JobStatus.COMPLETED)
                self.metrics.inc("completed")
                return
            cls, root = classify_failure(error)
            if cls == QUOTA and isinstance(root, TimeoutError) \
                    and spec.retry.retry_on_timeout:
                cls = RETRYABLE
            handle._record_failure(cls, root)
            self.metrics.observe_run(elapsed, 0, 0.0)
            with self._cv:
                still_running = self._state == "running"
            if cls == RETRYABLE and still_running \
                    and attempt < spec.retry.max_retries:
                self.metrics.inc("retries")
                delay = spec.retry.delay_for(
                    attempt, f"{spec.name}#{handle.id}")
                if delay > 0:
                    # Interruptible backoff: a shutdown wakes the slot.
                    with self._cv:
                        self._cv.wait(timeout=delay)
                attempt += 1
                continue
            if cls == RETRYABLE:
                handle._set_status(JobStatus.DEAD_LETTERED)
                with self._cv:
                    self.dead_letters.append(handle)
                self.metrics.inc("dead_lettered")
            else:
                handle._set_status(JobStatus.FAILED)
                self.metrics.inc("failed")
                self.metrics.inc("failed_quota" if cls == QUOTA
                                 else "failed_deterministic")
            return

    def _run_attempt(self, handle: JobHandle,
                     attempt: int) -> Optional[BaseException]:
        """One ``run()`` under the robustness envelope.

        Returns None on success (result stored on the handle) or the
        exception that killed the attempt.  Warm trackers are checked out
        and — leak-asserted — back in here, whatever happens in between.
        """
        spec = handle.spec
        transport = spec.transport if spec.transport is not None \
            else self._transport_name
        warm = self._warm_capable and spec.transport is None
        if spec.transport is not None:
            # Per-job override: probe its capabilities, don't assume ours.
            try:
                warm = create_transport(spec.transport).supports_warm_pools
            except TransportUnavailableError as exc:
                return exc
        trackers = self.bank.checkout(spec.nprocs) if warm else None
        if trackers is not None and spec.quota.max_pool_bytes is not None:
            for tracker in trackers:
                tracker.byte_ceiling = spec.quota.max_pool_bytes
        faults = spec.faults_for_attempt(attempt)
        reliability = spec.reliability
        if warm and faults is None and reliability is None \
                and (spec.quota.time_budget is not None
                     or handle._kill_armed()):
            # A budget trip (or a kill) must release the *other* ranks'
            # blocked waits too, which takes a failure detector — and a
            # pristine fabric has none.  An empty fault plan buys exactly
            # the detector: no scheduled faults, no reliability protocol.
            faults = FaultPlan()

        def hook(fabric) -> None:
            if spec.quota.time_budget is not None:
                for w in fabric.workers:
                    w.clock = BudgetedClock(spec.quota.time_budget)
            injector = fabric.injector
            handle._attach_detector(
                injector.detector if injector is not None else None)

        dirty = False
        error: Optional[BaseException] = None
        try:
            result = run(spec.fn, nprocs=spec.nprocs, params=spec.params,
                         engine_config=spec.engine_config,
                         timeout=spec.quota.wall_timeout,
                         trace_messages=spec.trace_messages,
                         sanitize=spec.sanitize,
                         faults=faults,
                         reliability=reliability,
                         transport=transport,
                         memory_trackers=trackers,
                         fabric_hook=hook if warm else None)
            quota_error = self._post_hoc_quota(spec, result) if not warm \
                else None
            if quota_error is not None:
                error = quota_error
            else:
                handle.result = result
        except RuntimeAbort as exc:
            error = exc
            if any(isinstance(f, TimeoutError)
                   for f in exc.failures.values()):
                # Wall-timeout abandon: rank threads may still be alive
                # and touching these pools — never bank them again.
                dirty = True
        except BaseException as exc:  # noqa: BLE001 - slot must survive
            error = exc
        finally:
            handle._detach_detector()
            if trackers is not None:
                leak = self.bank.checkin(
                    trackers, job=f"{spec.name}#{handle.id}/a{attempt}",
                    dirty=dirty)
                if leak is not None:
                    self.metrics.inc("pool_leaks")
                    if error is None:
                        error = leak
                if dirty:
                    self.metrics.inc("pools_retired")
        return error

    @staticmethod
    def _post_hoc_quota(spec: JobSpec,
                        result: JobResult) -> Optional[BaseException]:
        """Quota enforcement for backends without driver-side hooks.

        A forked-process backend (``shm``) cannot carry a budget clock or
        a byte ceiling across the fork, so the quota is checked against
        the job's reported clocks and memory peaks instead: the job still
        ran to completion, but a budget breach fails it deterministically.
        """
        from ..errors import MemoryQuotaError, TimeBudgetExceeded
        if spec.quota.time_budget is not None \
                and result.max_clock > spec.quota.time_budget:
            return TimeBudgetExceeded(spec.quota.time_budget,
                                      result.max_clock)
        if spec.quota.max_pool_bytes is not None:
            for snap in result.memory:
                if snap.get("peak_bytes", 0) > spec.quota.max_pool_bytes:
                    return MemoryQuotaError(spec.quota.max_pool_bytes,
                                            snap["peak_bytes"], 0)
        return None

    def _aggregate_sanitizer(self, result: Optional[JobResult]) -> None:
        report = getattr(result, "sanitizer_report", None)
        if report is None:
            return
        findings = getattr(report, "diagnostics", None) or []
        leaks = sum(1 for d in findings
                    if getattr(d, "code", "") in ("RPD420", "RPD421"))
        if findings:
            self.metrics.inc("sanitizer_findings", len(findings))
        if leaks:
            self.metrics.inc("leaked_requests", leaks)

    # -- lifecycle ---------------------------------------------------------

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until the queue is empty and nothing is in flight."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            while self._queue or self._inflight:
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._cv.wait(timeout=min(0.5, remaining)
                              if remaining is not None else 0.5)
            return True

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> dict:
        """SIGTERM semantics: stop admission, settle, account.

        ``drain=True`` finishes in-flight jobs and cancels queued ones;
        ``drain=False`` additionally kills in-flight jobs through their
        detectors.  Idempotent.  Returns the final :meth:`report`, whose
        ``shutdown`` section counts what was cancelled/killed.
        """
        with self._cv:
            already = self._state != "running"
            self._state = "draining"
            cancelled = self._queue
            self._queue = []
            inflight = list(self._inflight.values())
            self._cv.notify_all()
        for handle in cancelled:
            handle._record_failure(
                "cancelled",
                AdmissionError("draining", "cancelled at shutdown"))
            handle._set_status(JobStatus.CANCELLED)
            self.metrics.inc("cancelled")
        killed = 0
        if not drain:
            for handle in inflight:
                if handle.kill("service shutdown"):
                    killed += 1
                    self.metrics.inc("kills")
        for t in self._threads:
            t.join(timeout=timeout)
        with self._cv:
            self._state = "stopped"
        report = self.report()
        report["shutdown"] = {"already_shut_down": already,
                              "cancelled_queued": len(cancelled),
                              "killed_inflight": killed,
                              "drained": drain}
        return report

    def __enter__(self) -> "JobService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    # -- introspection -----------------------------------------------------

    @property
    def state(self) -> str:
        with self._cv:
            return self._state

    def queue_depth(self) -> int:
        with self._cv:
            return len(self._queue)

    def inflight(self) -> list[JobHandle]:
        with self._cv:
            return list(self._inflight.values())

    def report(self) -> dict:
        """The JSON snapshot endpoint (``repro-serve --report``)."""
        snap = self.metrics.snapshot()
        with self._cv:
            state = self._state
            depth = len(self._queue)
            inflight = len(self._inflight)
            dead = [h.describe() for h in self.dead_letters]
        snap.update({
            "service": self.name,
            "state": state,
            "slots": self.slots,
            "max_queue": self.max_queue,
            "transport": self.transport,
            "queue_depth": depth,
            "inflight": inflight,
            "pool_bank": self.bank.snapshot(),
            "plan_cache": plan_cache_info(),
            "dead_letters": dead,
        })
        return snap
