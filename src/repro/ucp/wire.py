"""Wire format: what actually travels between workers.

A :class:`WireMessage` is the simulator's packet: a header plus the payload
*descriptor*.  For eager sends the payload is a list of copied chunks; for
rendezvous/iov sends it is a reference to the sender's live buffers that the
receiver pulls at match time (the simulation's stand-in for RDMA get).

The header carries the per-entry lengths.  This is engine-internal metadata —
the very information the paper's Section VI says MPI would need to expose via
extended ``MPI_Probe``/``MPI_Get_count`` to avoid multi-message protocols.
Our prototype controls both ends of the wire, so it rides in the header;
the *user-visible* strategies that lack such an engine (``pickle-oob``) still
pay for an explicit lengths message, reproducing the paper's baseline.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


class _MsgIdAllocator:
    """Lock-guarded monotone message-id source.

    ``next(itertools.count())`` looks atomic but only is so by accident of
    the GIL (RPD801): a free-threaded interpreter, or any runtime that
    preempts mid-``next``, can hand two ranks the same id and break every
    completion/retransmission path keyed on ``msg_id``.
    """

    def __init__(self, start: int = 1):
        self._lock = threading.Lock()
        self._next = start

    def allocate(self) -> int:
        with self._lock:
            val = self._next
            self._next += 1
            return val


_msg_ids = _MsgIdAllocator()


@dataclass
class WireHeader:
    """Metadata visible to matching and probing."""

    tag: int                     # packed transport tag (comm | src | user)
    source: int                  # sending worker index
    total_bytes: int             # payload size over all entries
    #: Per-entry byte lengths; a single-entry list for contiguous messages.
    entry_lengths: tuple[int, ...] = ()
    #: How many leading entries are packed in-band data (the rest are
    #: memory regions) — the custom-datatype engine's framing.
    packed_entries: int = 0
    #: Protocol chosen by the sender ("eager" / "rndv" / "iov" / "generic").
    protocol: str = "eager"
    #: Canonical type signature of the send — an RLE tuple of
    #: ``(scalar_code, count)`` pairs, or None when the sender cannot state
    #: one statically (custom datatypes).  Carried on the envelope so the
    #: sanitizer can enforce MPI type-matching rules at match time.
    signature: tuple | None = None
    #: Per-channel sequence number stamped by the fault injector
    #: (:mod:`repro.ucp.faults`); -1 on a fabric without fault injection.
    seq: int = -1
    #: CRC32 of every reliability fragment of the payload; empty on a
    #: fabric without fault injection.  Receivers verify these at
    #: delivery, which is how corruption is detected (and, with the
    #: reliability protocol, NACKed and retransmitted).
    frag_crcs: tuple[int, ...] = ()
    msg_id: int = field(default_factory=_msg_ids.allocate)


class WireMessage:
    """One in-flight message.

    Parameters
    ----------
    header:
        The :class:`WireHeader`.
    chunks:
        Payload entries.  Eager: freshly copied uint8 arrays (sender buffers
        may be reused immediately).  Rendezvous: live read views of the
        sender's buffers, pulled when the receiver completes the match.
    send_ready:
        Sender virtual time at which the payload is ready to move.
    sender_cost_charged:
        Bookkeeping so tests can verify cost symmetry.
    """

    def __init__(self, header: WireHeader, chunks: Sequence[np.ndarray],
                 send_ready: float, wire_time: float, rndv: bool,
                 recv_cost: float):
        self.header = header
        self.chunks = list(chunks)
        self.send_ready = send_ready
        self.wire_time = wire_time
        self.rndv = rndv
        self.recv_cost = recv_cost
        #: Set when the receiver has pulled the data (rendezvous senders
        #: block on this; eager senders never wait).
        self.completed = threading.Event()  # noqa: RPD811
        #: Completion virtual time, filled by the receiver at delivery.
        self.completion_time: float | None = None
        #: Receive-side failure (e.g. truncation).  Set before completion so
        #: a blocked rendezvous sender is released with an error instead of
        #: hanging forever.
        self.error: BaseException | None = None  # noqa: RPD811
        #: Set by the fault injector when the reliability retry budget ran
        #: out: the envelope still arrives (so the receiver unblocks) but
        #: delivery raises this instead of moving data.
        self.poisoned: BaseException | None = None  # noqa: RPD811
        #: msg_id of the original when this message is an injected
        #: duplicate (fault plans with ``duplicate > 0``).
        self.duplicate_of: int | None = None

    @property
    def total_bytes(self) -> int:
        return self.header.total_bytes

    def delivery_time(self, recv_ready: float) -> float:
        """Virtual time at which the payload lands at the receiver.

        Eager data is already on the wire when the receiver looks;
        rendezvous transfers cannot start before both sides are ready.
        """
        start = max(self.send_ready, recv_ready) if self.rndv else self.send_ready
        return start + self.wire_time

    def mark_complete(self, t: float) -> None:
        self.completion_time = t
        self.completed.set()

    def mark_failed(self, t: float, exc: BaseException) -> None:
        """Release any waiting sender with the receive-side failure."""
        self.error = exc
        self.completion_time = t
        self.completed.set()


def copy_chunks(buffers: Sequence[np.ndarray],
                pool=None) -> list[np.ndarray]:
    """Eager-copy a list of buffer views into private chunks.

    With ``pool`` (a :class:`repro.ucp.memory.BufferPool`) the staging chunks
    are pool-acquired instead of freshly allocated; the delivery path returns
    them to the sender's pool once the payload has been scattered.
    """
    if pool is None:
        return [np.array(b, dtype=np.uint8, copy=True) for b in buffers]
    out = []
    for b in buffers:
        src = np.asarray(b, dtype=np.uint8).reshape(-1)
        chunk = pool.acquire(src.shape[0])
        chunk[:] = src
        out.append(chunk)
    return out
