"""Transport-level constants (the UCP analogues).

The 64-bit tag-packing scheme mirrors how real MPI implementations run over
UCX: the MPI communicator id and source rank are folded into the UCP tag and
wildcards become mask bits.
"""

from __future__ import annotations

# UCP datatype kinds (UCP_DATATYPE_* analogues).
DATATYPE_CONTIG = "contig"
DATATYPE_IOV = "iov"
DATATYPE_GENERIC = "generic"

# Tag packing: | comm (16) | source (16) | user tag (32) |
TAG_USER_BITS = 32
TAG_SOURCE_BITS = 16
TAG_COMM_BITS = 16

TAG_USER_MASK = (1 << TAG_USER_BITS) - 1
TAG_SOURCE_SHIFT = TAG_USER_BITS
TAG_SOURCE_MASK = ((1 << TAG_SOURCE_BITS) - 1) << TAG_SOURCE_SHIFT
TAG_COMM_SHIFT = TAG_USER_BITS + TAG_SOURCE_BITS
TAG_COMM_MASK = ((1 << TAG_COMM_BITS) - 1) << TAG_COMM_SHIFT

TAG_FULL_MASK = (1 << (TAG_USER_BITS + TAG_SOURCE_BITS + TAG_COMM_BITS)) - 1


def pack_tag(comm_id: int, source: int, user_tag: int) -> int:
    """Fold (communicator, source rank, user tag) into one transport tag."""
    if not 0 <= user_tag <= TAG_USER_MASK:
        raise ValueError(f"user tag {user_tag} out of range")
    if not 0 <= source < (1 << TAG_SOURCE_BITS):
        raise ValueError(f"source rank {source} out of range")
    if not 0 <= comm_id < (1 << TAG_COMM_BITS):
        raise ValueError(f"comm id {comm_id} out of range")
    return (comm_id << TAG_COMM_SHIFT) | (source << TAG_SOURCE_SHIFT) | user_tag


def unpack_tag(tag: int) -> tuple[int, int, int]:
    """Inverse of :func:`pack_tag`: returns (comm_id, source, user_tag)."""
    return (tag >> TAG_COMM_SHIFT,
            (tag & TAG_SOURCE_MASK) >> TAG_SOURCE_SHIFT,
            tag & TAG_USER_MASK)


def match_mask(any_source: bool, any_tag: bool) -> int:
    """Mask for tag matching with optional wildcards."""
    mask = TAG_FULL_MASK
    if any_source:
        mask &= ~TAG_SOURCE_MASK
    if any_tag:
        mask &= ~((1 << TAG_USER_BITS) - 1)
    return mask
