"""Tag matching: posted-receive and unexpected-message queues.

Implements the matching semantics MPI requires of its transport: messages
from one sender on one tag match posted receives in FIFO order; receives
posted before arrival are matched by the depositing sender, receives posted
after arrival claim from the unexpected queue.  Matching is by
``(msg.tag & mask) == (want.tag & mask)`` with the wildcard masks of
:mod:`repro.ucp.constants`.

Matching only *pairs* a message with a receive; the data movement (and all
virtual-time charging) happens later on the receiving thread — see
:class:`repro.ucp.context.Worker`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional

from .wire import WireMessage


class PostedRecv:
    """A receive posted before its message arrived."""

    __slots__ = ("tag", "mask", "msg", "matched")

    def __init__(self, tag: int, mask: int):
        self.tag = tag
        self.mask = mask
        self.msg: Optional[WireMessage] = None
        self.matched = threading.Event()

    def accepts(self, msg: WireMessage) -> bool:
        return (msg.header.tag & self.mask) == (self.tag & self.mask)

    def attach(self, msg: WireMessage) -> None:
        self.msg = msg
        self.matched.set()


class TagMatcher:
    """Per-worker matching engine (thread-safe)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._posted: deque[PostedRecv] = deque()
        self._unexpected: deque[WireMessage] = deque()

    # -- sender side ------------------------------------------------------

    def deposit(self, msg: WireMessage) -> None:
        """Offer an arriving message; match a posted recv or queue it."""
        with self._cond:
            for i, posted in enumerate(self._posted):
                if posted.accepts(msg):
                    del self._posted[i]
                    posted.attach(msg)
                    return
            self._unexpected.append(msg)
            self._cond.notify_all()

    # -- receiver side ----------------------------------------------------

    def post(self, tag: int, mask: int) -> PostedRecv:
        """Post a receive; claims an unexpected message when one matches."""
        posted = PostedRecv(tag, mask)
        with self._cond:
            for i, msg in enumerate(self._unexpected):
                if posted.accepts(msg):
                    del self._unexpected[i]
                    posted.attach(msg)
                    return posted
            self._posted.append(posted)
        return posted

    def cancel(self, posted: PostedRecv) -> bool:
        """Remove an unmatched posted receive; False if already matched."""
        with self._cond:
            try:
                self._posted.remove(posted)
                return True
            except ValueError:
                return False

    def retract(self, msg: WireMessage) -> bool:
        """Remove a deposited-but-unclaimed message from the unexpected
        queue; False if a receive already matched (or is matching) it.

        Used by the fault machinery when a sender-side cancel or a job
        teardown needs to withdraw traffic that no receive will consume.
        """
        with self._cond:
            try:
                self._unexpected.remove(msg)
                return True
            except ValueError:
                return False

    def probe(self, tag: int, mask: int, remove: bool = False
              ) -> Optional[WireMessage]:
        """Non-blocking probe of the unexpected queue.

        ``remove=True`` implements mprobe semantics: the message is removed
        from matching and must be received via its handle.
        """
        with self._cond:
            for i, msg in enumerate(self._unexpected):
                if (msg.header.tag & mask) == (tag & mask):
                    if remove:
                        del self._unexpected[i]
                    return msg
        return None

    def wait_probe(self, tag: int, mask: int, remove: bool = False,
                   timeout: float | None = None) -> Optional[WireMessage]:
        """Blocking probe: wait until a matching message is queued.

        Note: a message destined for an already-*posted* receive never
        enters the unexpected queue, matching MPI's rule that probe only
        sees messages that no posted receive would consume.
        """
        with self._cond:
            while True:
                for i, msg in enumerate(self._unexpected):
                    if (msg.header.tag & mask) == (tag & mask):
                        if remove:
                            del self._unexpected[i]
                        return msg
                if not self._cond.wait(timeout=timeout):
                    return None

    # -- introspection ------------------------------------------------------

    def pending_counts(self) -> tuple[int, int]:
        """(posted, unexpected) queue depths — for tests and debugging."""
        with self._lock:
            return len(self._posted), len(self._unexpected)

    def unmatched_messages(self) -> list[WireMessage]:
        """Snapshot of deposited messages no receive ever claimed.

        Used by the sanitizer's end-of-job sweep (RPD421): anything still
        here when every rank finished was sent and silently lost.
        """
        with self._lock:
            return list(self._unexpected)
