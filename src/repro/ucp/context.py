"""Context, workers, endpoints and transport requests.

Mirrors the UCP object model the paper's prototype builds on: a *context*
holds configuration, each rank owns a *worker* (progress engine + tag
matcher + virtual clock), and *endpoints* connect worker pairs.  A
:class:`Fabric` bundles the workers of one job.

Threading/time contract:

* Each worker's clock and callbacks run only on its own rank's thread.
* ``tag_send`` charges the sender and deposits a :class:`WireMessage` at the
  destination; data is copied at injection for eager protocols, or pulled by
  the receiver at delivery for rendezvous protocols (blocking the sender's
  ``wait()`` until then — real MPI rendezvous semantics, including the
  classic both-sides-blocking-send deadlock).
* All receive-side data movement happens in ``RecvRequest.wait()`` on the
  receiving thread, so user unpack callbacks never run on a foreign thread.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import (MPIError, ProcFailedError, ProcFailedPendingError,
                      TransportError, TruncationError)
from . import constants
from .dtypes import ContigData, GenericData, HandlerData, IovData
from .faults import (FaultInjector, FaultPlan, ReliabilityConfig,
                     fragment_bounds, fragment_crcs)
from .memory import MemoryTracker
from .netsim import DEFAULT_PARAMS, CostModel, LinkParams, VirtualClock
from .protocols import plan_send, wait_semantics
from .tagmatch import PostedRecv, TagMatcher
from .transitions import crc_reject
from .wire import WireHeader, WireMessage, copy_chunks


@dataclass(frozen=True)
class UcpConfig:
    """Per-job transport configuration."""

    params: LinkParams = field(default_factory=lambda: DEFAULT_PARAMS)
    #: Record every message injection/delivery into per-worker trace lists
    #: (useful for debugging protocols and asserted by tests).
    trace_messages: bool = False
    #: Seeded schedule of wire faults and rank crash/stall events
    #: (:class:`repro.ucp.faults.FaultPlan`).  None — the default — means a
    #: pristine fabric: no fault machinery is even constructed, so the
    #: default path is byte-identical to a build without this feature.
    faults: Optional[FaultPlan] = None
    #: Reliability (sequencing/CRC/ACK/retransmission) protocol
    #: configuration; None means the fabric is treated as already reliable
    #: (which it is, unless ``faults`` says otherwise).
    reliability: Optional[ReliabilityConfig] = None

    @property
    def frag_size(self) -> int:
        return self.params.frag_size


class UcpContext:
    """Factory for fabrics (the UCP context analogue)."""

    def __init__(self, config: UcpConfig | None = None):
        self.config = config or UcpConfig()

    def create_fabric(self, nworkers: int, transport=None,
                      memory_trackers=None) -> "Fabric":
        return Fabric(nworkers, self.config, transport=transport,
                      memory_trackers=memory_trackers)


class Fabric:
    """All workers of one job plus their shared configuration.

    ``transport`` is the message-movement backend
    (:class:`repro.ucp.transport.Transport`); None selects the in-process
    threads backend, preserving the seed semantics byte for byte.
    """

    def __init__(self, nworkers: int, config: UcpConfig, transport=None,
                 memory_trackers=None):
        if nworkers < 1:
            raise TransportError(f"need at least one worker, got {nworkers}")
        if memory_trackers is not None and len(memory_trackers) != nworkers:
            raise TransportError(
                f"got {len(memory_trackers)} warm memory trackers for "
                f"{nworkers} workers")
        self.config = config
        self.model = CostModel(config.params)
        self._intra_model = CostModel(config.params.intra_node_variant())
        #: Fault/reliability interposer; None on a pristine fabric so the
        #: default send/recv paths carry zero extra work.
        self.injector: Optional[FaultInjector] = None
        if config.faults is not None or config.reliability is not None:
            self.injector = FaultInjector(nworkers, config.faults,
                                          config.reliability)
        if transport is None:
            from .transport.inproc import InprocTransport
            transport = InprocTransport()
        self.transport = transport
        self.workers = [
            Worker(i, self, memory=(memory_trackers[i]
                                    if memory_trackers is not None
                                    else None))
            for i in range(nworkers)]
        transport.attach(self)

    def worker(self, index: int) -> "Worker":
        return self.workers[index]

    def pair_model(self, src: int, dst: int) -> CostModel:
        """Cost model for a rank pair (intra-node pairs use shared memory)."""
        if self.config.params.same_node(src, dst):
            return self._intra_model
        return self.model


def _wait_with_detector(worker: "Worker", event, targets, what: str,
                        timeout: float | None) -> bool:
    """Block on ``event`` while polling the failure detector.

    Used instead of a bare ``Event.wait`` whenever the fabric has a fault
    injector: a wait whose every candidate peer crashed (or the whole job
    aborted under ``MPI_ERRORS_ARE_FATAL``) raises
    :class:`~repro.errors.ProcFailedError` in bounded time instead of
    hanging until the job's wall-clock timeout — the ULFM "surviving ranks
    keep running" guarantee.
    """
    detector = worker.fabric.injector.detector
    deadline = None if timeout is None else _time.monotonic() + timeout
    while True:
        if event.is_set():
            return True
        detector.check_hopeless(targets, what)
        poll = 0.005
        if deadline is not None:
            remaining = deadline - _time.monotonic()
            if remaining <= 0.0:
                return False
            poll = min(poll, remaining)
        if event.wait(timeout=poll):
            return True


class SendRequest:
    """Handle for an injected message."""

    def __init__(self, worker: "Worker", msg: WireMessage,
                 dst: int | None = None):
        self._worker = worker
        self.msg = msg
        #: Destination worker index — the wait-for target of a blocking
        #: rendezvous wait (filled by Endpoint.tag_send).
        self.dst = dst
        #: Human label for sanitizer deadlock evidence (set by the engine).
        self.san_detail = ""

    def test(self) -> bool:
        if not self.msg.rndv:
            return True
        return self.msg.completed.is_set()

    def wait(self, timeout: float | None = None) -> None:
        """Block until the message no longer needs the send buffer."""
        if self.msg.rndv:
            fi = self._worker.fabric.injector
            san = self._worker.sanitizer
            base = self.san_detail or (
                f"send of {self.msg.total_bytes} bytes to rank {self.dst}")
            if fi is not None:
                fi.on_progress(self._worker)
                targets = (self.dst,) if self.dst is not None else ()
                if not _wait_with_detector(self._worker, self.msg.completed,
                                           targets, base, timeout):
                    raise TransportError(
                        "send wait timed out (receiver never arrived)")
            elif san is not None and self.dst is not None:
                detail = (f"{base} — "
                          f"{wait_semantics(self.msg.header.protocol, True)}")
                if not san.wait_event(self._worker.index, self.msg.completed,
                                      (self.dst,), detail,
                                      self._worker.clock.now, timeout=timeout):
                    raise TransportError(
                        "send wait timed out (receiver never arrived)")
            elif not self.msg.completed.wait(timeout=timeout):
                raise TransportError("send wait timed out (receiver never arrived)")
            # Rendezvous completion happens at the receiver's clock.
            self._worker.clock.merge(self.msg.completion_time)
            err = self.msg.error
            if err is not None:
                if isinstance(err, MPIError):
                    # Reliability exhaustion / peer failure: surface the
                    # MPI error class itself, not a transport wrapper.
                    raise err
                raise TransportError(
                    f"receiver failed to deliver this message: {err}")

    def cancel(self) -> bool:
        """Withdraw the message if no receive has matched it yet.

        Returns True when the message was retracted from the destination's
        unexpected queue; its staging chunks go back to the sender's pool
        so a cancelled send leaves no pool residue.  False (and no effect)
        once a receive has matched — MPI's "cancel either completes or the
        operation completes, never both".
        """
        if self.dst is None or self.msg.completed.is_set():
            return False
        return self._worker.fabric.transport.try_cancel_send(
            self._worker, self.dst, self.msg)


@dataclass
class RecvInfo:
    """Completion information (the transport-level Status)."""

    source: int
    tag: int
    nbytes: int
    entry_lengths: tuple[int, ...]
    packed_entries: int


class RecvRequest:
    """Handle for a posted receive; delivery runs inside :meth:`wait`."""

    def __init__(self, worker: "Worker", posted: PostedRecv, data,
                 peers=None):
        self._worker = worker
        self._posted = posted
        self._data = data
        #: Worker indices that could satisfy this receive (None = any rank);
        #: the wait-for targets of a blocking wait under the sanitizer.
        self.peers = peers
        #: Human label for sanitizer deadlock evidence (set by the engine).
        self.san_detail = ""
        self.info: Optional[RecvInfo] = None

    def test(self) -> bool:
        """True when a message has matched (data may still need delivery)."""
        return self.info is not None or self._posted.matched.is_set()

    def wait(self, timeout: float | None = None) -> RecvInfo:
        if self.info is not None:
            return self.info
        fi = self._worker.fabric.injector
        san = self._worker.sanitizer
        detail = self.san_detail or "recv (posted tag match)"
        if fi is not None:
            fi.on_progress(self._worker)
            wildcard = self.peers is None
            targets = tuple(self.peers) if self.peers is not None else tuple(
                r for r in range(len(self._worker.fabric.workers))
                if r != self._worker.index)
            try:
                ok = _wait_with_detector(self._worker, self._posted.matched,
                                         targets, detail, timeout)
            except ProcFailedError as exc:
                # ULFM: a wildcard (ANY_SOURCE) receive whose potential
                # sender failed is *pending*, not definitively failed —
                # unless the whole job aborted.
                if wildcard and exc.failed_ranks \
                        and fi.detector.aborted is None:
                    raise ProcFailedPendingError(
                        f"wildcard {detail}: {exc}",
                        failed_ranks=exc.failed_ranks) from exc
                raise
            if not ok:
                raise TransportError("recv wait timed out (no matching send)")
        elif san is not None:
            targets = self.peers if self.peers is not None \
                else range(len(self._worker.fabric.workers))
            if not san.wait_event(self._worker.index, self._posted.matched,
                                  targets, detail, self._worker.clock.now,
                                  timeout=timeout):
                raise TransportError("recv wait timed out (no matching send)")
        elif not self._posted.matched.wait(timeout=timeout):
            raise TransportError("recv wait timed out (no matching send)")
        self.info = self._worker.deliver(self._posted.msg, self._data)
        return self.info

    def cancel(self) -> bool:
        """Withdraw an unmatched posted receive.

        True when the receive was removed from the matcher before any
        message matched it; False (and no effect) otherwise.  Data-side
        cleanup (returning bounce buffers) is the caller's job — see
        ``repro.mpi.requests.Request.cancel``.
        """
        if self.info is not None or self._posted.matched.is_set():
            return False
        return self._worker.matcher.cancel(self._posted)


class Worker:
    """One rank's transport engine."""

    def __init__(self, index: int, fabric: Fabric,
                 memory: MemoryTracker | None = None):
        self.index = index
        self.fabric = fabric
        self.config = fabric.config
        self.model = fabric.model
        self.clock = VirtualClock()
        self.matcher = TagMatcher()
        #: Allocation accounting + buffer pool.  Normally fresh per job;
        #: the job service passes a recycled (warm) tracker so pooled
        #: buffers survive across jobs on the same worker slot.
        self.memory = memory if memory is not None else MemoryTracker()
        #: Messages this rank delivered to the application (cheap counter,
        #: always on — the job service aggregates it into msgs/s).
        self.delivered_msgs = 0
        #: Job-level sanitizer (attached by ``repro.mpi.run(sanitize=True)``;
        #: None means every check is skipped at zero cost).
        self.sanitizer = None
        #: Message trace (populated when the config enables tracing).
        self.trace: list[dict] = []
        #: Per-rank message-id counter; see :meth:`next_msg_id`.  Touched
        #: only by this rank's own thread (the tag_send contract).
        self._msg_seq = 0

    # -- message ids ------------------------------------------------------

    def next_msg_id(self) -> int:
        """A message id unique across ranks *and* deterministic per rank.

        Ids are namespaced ``(rank+1) << 40 | counter`` instead of drawn
        from the process-global allocator: a global counter's values
        depend on thread interleaving (and cannot exist at all when ranks
        are separate processes), while namespaced ids make traces
        byte-identical across every transport backend — the conformance
        matrix diffs them directly.
        """
        self._msg_seq += 1
        return ((self.index + 1) << 40) | self._msg_seq

    # -- endpoints --------------------------------------------------------

    def endpoint(self, dst: int) -> "Endpoint":
        return Endpoint(self, dst)

    # -- receive ------------------------------------------------------------

    def tag_recv(self, tag: int, data,
                 mask: int = constants.TAG_FULL_MASK,
                 peers=None) -> RecvRequest:
        """Post a receive; complete it with ``RecvRequest.wait()``.

        ``peers`` optionally names the worker indices that could satisfy
        this receive (wait-for targets for the sanitizer's deadlock
        detector); None means any rank.
        """
        posted = self.matcher.post(tag, mask)
        return RecvRequest(self, posted, data, peers=peers)

    def tag_probe(self, tag: int, mask: int = constants.TAG_FULL_MASK,
                  remove: bool = False, block: bool = False,
                  timeout: float | None = None) -> Optional[WireMessage]:
        """Probe the unexpected queue (mprobe semantics with remove=True)."""
        self.clock.advance(self.model.probe_time())
        if block:
            msg = self.matcher.wait_probe(tag, mask, remove=remove,
                                          timeout=timeout)
        else:
            msg = self.matcher.probe(tag, mask, remove=remove)
        if msg is not None:
            # The probe observed the envelope, which cannot arrive earlier
            # than one wire latency after the sender injected it.
            self.clock.merge(msg.send_ready + self.model.params.latency)
        return msg

    def msg_recv(self, msg: WireMessage, data) -> RecvInfo:
        """Receive a message previously removed by an mprobe."""
        return self.deliver(msg, data)

    def _release_chunks(self, msg: WireMessage) -> None:
        """Return a delivered message's staging chunks to the sender's pool.

        Only eager staging and pooled bounce buffers actually come back —
        rendezvous chunks that are live views of the sender's user buffers
        are not pool-owned and the release is a no-op for them.  Callback
        descriptors (GENERIC, handler) may retain chunk references, so only
        the CONTIG/IOV copy paths release.  How the release crosses the
        rank boundary is the transport's business: in-process it reaches
        the sender's pool directly, remote backends acknowledge instead.
        """
        self.fabric.transport.release_chunks(self, msg)

    # -- delivery (receiver thread only) ------------------------------------

    def deliver(self, msg: WireMessage, data) -> RecvInfo:
        """Move payload into the descriptor and charge receive-side time.

        On failure the message is marked failed (releasing a blocked
        rendezvous sender with an error) and the exception re-raised.
        Completion crosses back to the sender through the transport —
        a direct event set in-process, an acknowledgement frame remotely.
        """
        transport = self.fabric.transport
        try:
            info = self._deliver(msg, data)
        except BaseException as exc:
            msg.mark_failed(self.clock.now, exc)
            transport.on_delivery_failed(self, msg, exc)
            raise
        transport.on_delivered(self, msg)
        return info

    def _verify_crcs(self, msg: WireMessage) -> None:
        """Check the envelope's per-fragment CRCs against the payload.

        Only reachable on a fault-injected fabric (pristine fabrics never
        stamp ``frag_crcs``).  A mismatch means corruption reached the
        application — counted per receiver and reported as RPD451 — but
        the data is still delivered: without the reliability protocol
        there is nothing to retransmit from.
        """
        bounds = fragment_bounds(msg.chunks, self.config.frag_size)
        actual = fragment_crcs(msg.chunks, bounds)
        expected = msg.header.frag_crcs
        bad = crc_reject(expected, actual)
        if not bad:
            return
        fi = self.fabric.injector
        if fi is not None:
            fi.stats[self.index].add(corrupted_delivered=len(bad))
        if self.sanitizer is not None:
            hdr = msg.header
            self.sanitizer.emit(
                "RPD451",
                f"message #{hdr.seq} from rank {hdr.source}: {len(bad)} "
                f"fragment(s) failed CRC verification at delivery; "
                f"corrupted payload reaches the application",
                rank=self.index,
                hint="enable the reliability protocol "
                     "(run(..., reliability=True)) so corrupted fragments "
                     "are NACKed and retransmitted")

    def _deliver(self, msg: WireMessage, data) -> RecvInfo:
        fi = self.fabric.injector
        if fi is not None:
            fi.on_progress(self)
            if msg.poisoned is not None:
                # The sender's reliability retry budget ran out; the
                # envelope arrived so this wait terminates, but the data
                # never did.
                self.clock.merge(msg.delivery_time(self.clock.now))
                raise msg.poisoned
            if msg.header.frag_crcs:
                self._verify_crcs(msg)
        if self.sanitizer is not None:
            # Signature-match and truncation checks run before any data
            # moves, so a finding is reported even when delivery raises.
            self.sanitizer.on_deliver(self.index, msg, data)
        arrival = msg.delivery_time(self.clock.now)
        self.clock.merge(arrival)
        self.clock.advance(msg.recv_cost)

        hdr = msg.header
        if isinstance(data, ContigData):
            if hdr.total_bytes > data.nbytes:
                raise TruncationError(
                    f"message of {hdr.total_bytes} bytes into a "
                    f"{data.nbytes}-byte buffer")
            pos = 0
            view = data.view
            for chunk in msg.chunks:
                n = chunk.shape[0]
                view[pos:pos + n] = chunk
                pos += n
            self._release_chunks(msg)
        elif isinstance(data, IovData):
            entries = data.entries()
            if len(msg.chunks) != len(entries):
                raise TruncationError(
                    f"iov message with {len(msg.chunks)} entries into "
                    f"{len(entries)} receive entries")
            for chunk, entry in zip(msg.chunks, entries):
                if chunk.shape[0] > entry.shape[0]:
                    raise TruncationError(
                        f"iov entry of {chunk.shape[0]} bytes into a "
                        f"{entry.shape[0]}-byte entry")
                entry[: chunk.shape[0]] = chunk
            self._release_chunks(msg)
        elif isinstance(data, GenericData):
            if data.unpack is None:
                raise TransportError("GenericData has no unpack callback (send-only)")
            offset = 0
            for chunk in msg.chunks:
                data.unpack(offset, chunk)
                offset += chunk.shape[0]
        elif isinstance(data, HandlerData):
            if data.max_bytes is not None and hdr.total_bytes > data.max_bytes:
                raise TruncationError(
                    f"message of {hdr.total_bytes} bytes exceeds handler "
                    f"limit {data.max_bytes}")
            data.handler(msg)
        else:
            raise TransportError(
                f"cannot deliver into descriptor {type(data).__name__}")

        msg.mark_complete(self.clock.now)
        self.delivered_msgs += 1
        if self.config.trace_messages:
            self.trace.append({
                "event": "recv", "peer": hdr.source,
                "msg_id": hdr.msg_id, "tag": hdr.tag,
                "bytes": hdr.total_bytes, "protocol": hdr.protocol,
                "entries": len(hdr.entry_lengths),
                "t": self.clock.now})
        return RecvInfo(source=hdr.source, tag=hdr.tag,
                        nbytes=hdr.total_bytes,
                        entry_lengths=hdr.entry_lengths,
                        packed_entries=hdr.packed_entries)


class Endpoint:
    """A directed sender->receiver connection.

    Holds the destination *index*, not the destination worker: on remote
    backends the peer lives in another process and all that exists locally
    is its address.
    """

    def __init__(self, src: Worker, dst_index: int):
        self.src = src
        self.dst_index = dst_index

    @property
    def dst(self) -> Worker:
        """The destination worker object (in-process backends and tests)."""
        return self.src.fabric.worker(self.dst_index)

    def tag_send(self, tag: int, data, force_rndv: bool = False,
                 signature=None) -> SendRequest:
        """Inject a message toward this endpoint's destination.

        ``force_rndv`` requests synchronous-send semantics: the message
        always takes the rendezvous path, so the sender's ``wait()`` cannot
        return before the matching receive ran.  ``signature`` is the
        sender's canonical type signature, carried on the envelope for the
        sanitizer's type-matching check.
        """
        worker = self.src
        fi = worker.fabric.injector
        if fi is not None:
            # Crash/stall checkpoint before any staging work happens, so a
            # crashed rank neither packs nor injects.
            fi.on_progress(worker)
        model = worker.fabric.pair_model(worker.index, self.dst_index)
        if isinstance(data, GenericData):
            frags = data.pack_entries(worker.config.frag_size,
                                      pool=worker.memory.pool)
            plan = plan_send(data, model, frag_count=len(frags))
            entries = frags
            packed_entries = len(frags)
        else:
            plan = plan_send(data, model, force_rndv=force_rndv)
            entries = data.entries()
            packed_entries = getattr(data, "packed_entries", 0)

        worker.clock.advance(plan.sender_cost)
        pool = worker.memory.pool
        if plan.eager_copy:
            chunks = copy_chunks(entries, pool=pool)
            if isinstance(data, GenericData):
                # Pipeline fragments are transient scratch; once staged on
                # the wire they go straight back to the pool.
                for frag in entries:
                    pool.release(frag)
        else:
            # Rendezvous/iov: the envelope carries the sender's live views
            # by design — the in-process stand-in for RDMA get.  The
            # in-process backends deliver the alias as-is; remote backends
            # (``rndv_aliases_buffers`` False) replace it with staged
            # memory or an arena mapping at encode time (see DESIGN.md,
            # transport portability).
            chunks = entries  # noqa: RPD810
        header = WireHeader(
            tag=tag, source=worker.index,
            total_bytes=sum(c.shape[0] for c in entries),
            entry_lengths=tuple(c.shape[0] for c in entries),
            packed_entries=packed_entries,
            protocol=plan.protocol,
            signature=signature,
            msg_id=worker.next_msg_id())
        msg = WireMessage(header, chunks, send_ready=worker.clock.now,
                          wire_time=plan.wire_time, rndv=plan.rndv,
                          recv_cost=plan.recv_cost)
        if worker.config.trace_messages:
            worker.trace.append({
                "event": "send", "peer": self.dst_index,
                "msg_id": header.msg_id, "tag": header.tag,
                "bytes": header.total_bytes, "protocol": plan.protocol,
                "entries": len(header.entry_lengths),
                "t": worker.clock.now})
        worker.fabric.transport.submit(worker, self.dst_index, msg, model)
        return SendRequest(worker, msg, dst=self.dst_index)
