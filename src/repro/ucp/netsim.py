"""Virtual-time network and memory cost model (the hardware substitute).

The paper's evaluation ran on two Dell PowerEdge R7525 servers joined by
ConnectX-5 InfiniBand at 100 Gbps.  We do not have that hardware, so the
transport charges *virtual time* from a LogGP-style cost model instead: every
byte still physically moves (sender buffer -> wire chunk -> receiver buffer,
verified by the tests), but the latency/bandwidth numbers reported by the
benchmark harness come from :class:`CostModel` applied to per-rank
:class:`VirtualClock` instances.

The model's structure — not its absolute constants — is what reproduces the
paper's figures:

* an eager/rendezvous protocol switch for contiguous messages (the Fig. 7
  bandwidth dip for ``manual-pack``),
* per-entry overhead for scatter/gather (iovec) transfers (why many small
  regions lose and few large regions win in Fig. 1 and Fig. 10),
* a vectorized-copy cost for manual packing versus a per-scalar cost for the
  gapped derived-datatype engine (the Fig. 5 vs Fig. 6 contrast),
* allocation cost on the receive side (why no pickle strategy reaches the
  roofline in Figs. 8-9).

See ``repro.bench.calibration`` for the rationale behind each constant.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class LinkParams:
    """Calibrated constants for the simulated link and memory system.

    All times are in seconds, all bandwidths in bytes/second.
    """

    #: One-way wire latency per message (ConnectX-5 class).
    latency: float = 1.5e-6
    #: Wire bandwidth; 100 Gbps = 12.5 GB/s.
    bandwidth: float = 12.5e9
    #: Contiguous messages larger than this switch from eager to rendezvous.
    eager_limit: int = 32 * 1024
    #: Extra handshake (RTS/CTS) round-trip paid by the rendezvous protocol.
    rndv_handshake: float = 8.0e-6
    #: Per-byte memory-registration cost paid by rendezvous zero-copy.
    rndv_reg_bandwidth: float = 80e9
    #: Fragment size for the generic (pack-callback) pipeline.
    frag_size: int = 8192
    #: Fixed cost per pipeline fragment (header, descriptor handling).
    per_frag_overhead: float = 50e-9
    #: Fixed cost of taking the scatter/gather (iovec) path at all.
    iov_base_overhead: float = 2.0e-6
    #: Cost per iovec entry (per memory region).
    iov_region_overhead: float = 20e-9
    #: Vectorized pack/copy bandwidth (memcpy through cache).
    copy_bandwidth: float = 8e9
    #: Transport-internal bounce-buffer copy rate.  Higher than user-space
    #: copies because UCX pipelines the eager copy with the wire transfer;
    #: the gap between this and ``rndv_handshake`` is what creates the
    #: eager->rendezvous bandwidth dip of Fig. 7.
    eager_copy_bandwidth: float = 20e9
    #: Per-scalar cost of the typemap-walking derived-datatype engine when a
    #: type contains gaps (the Open MPI slow path the paper measures).
    elem_cost: float = 5e-9
    #: Fixed cost of a fresh allocation (malloc + first-touch base).
    alloc_base: float = 0.3e-6
    #: First-touch page-in bandwidth for fresh allocations.
    alloc_bandwidth: float = 12e9
    #: Cost per custom-datatype callback invocation (FFI boundary).
    callback_overhead: float = 100e-9
    #: Fixed cost per pickle.dumps / pickle.loads call.
    pickle_base: float = 2.0e-6
    #: In-band pickle byte-processing bandwidth.
    pickle_bandwidth: float = 5e9
    #: Cost of an MPI_Mprobe / MPI_Probe round on the receive side.
    probe_overhead: float = 0.5e-6
    #: Per-message software overhead (matching, descriptors) on each side.
    msg_overhead: float = 0.2e-6
    #: Ranks per simulated node; 0 means every pair is inter-node (the
    #: paper's two-server testbed).  When nonzero, pairs on the same node
    #: use the intra-node latency/bandwidth below (shared memory).
    ranks_per_node: int = 0
    #: Intra-node (shared-memory) wire parameters.
    intra_latency: float = 0.3e-6
    intra_bandwidth: float = 40e9

    def intra_node_variant(self) -> "LinkParams":
        """Parameters of a same-node pair: shared-memory wire numbers."""
        return self.with_overrides(latency=self.intra_latency,
                                   bandwidth=self.intra_bandwidth)

    def same_node(self, a: int, b: int) -> bool:
        """True when ranks ``a`` and ``b`` share a simulated node."""
        return (self.ranks_per_node > 0
                and a // self.ranks_per_node == b // self.ranks_per_node)

    def with_overrides(self, **kw) -> "LinkParams":
        """Return a copy with some constants replaced (for ablations)."""
        return replace(self, **kw)

    # -- derived thresholds (consumed by repro.analyze) --------------------

    def min_efficient_region_bytes(self) -> int:
        """Smallest scatter/gather entry worth its per-entry overhead.

        Below this size, ``iov_region_overhead`` exceeds the wire time of
        the entry itself — the "tiny fragment" pathology the DDT
        performance literature warns about.
        """
        return max(1, int(self.iov_region_overhead * self.bandwidth))

    def iov_region_soft_limit(self) -> int:
        """Entry count past which per-entry costs dwarf the iovec base cost.

        At this count the aggregate ``iov_region_overhead`` is an order of
        magnitude above ``iov_base_overhead``; layouts with more regions per
        element should coalesce or fall back to packing.
        """
        return max(1, int(10 * self.iov_base_overhead / self.iov_region_overhead))

    def min_efficient_fragment(self) -> int:
        """Pipeline fragment below which descriptor overhead dominates."""
        return max(1, int(self.per_frag_overhead * self.eager_copy_bandwidth))


DEFAULT_PARAMS = LinkParams()

#: Threshold constants for the default link, exposed for the static analyzer
#: (:mod:`repro.analyze`) and for documentation.  Derived, not tunable —
#: override :class:`LinkParams` fields instead.
MIN_EFFICIENT_REGION_BYTES = DEFAULT_PARAMS.min_efficient_region_bytes()
IOV_REGION_SOFT_LIMIT = DEFAULT_PARAMS.iov_region_soft_limit()
MIN_EFFICIENT_FRAGMENT_BYTES = DEFAULT_PARAMS.min_efficient_fragment()


class VirtualClock:
    """Monotonic virtual clock owned by exactly one rank (thread).

    Ranks advance their own clock for local work (packing, allocation) and
    merge remote timestamps when a message completes, giving a classic
    discrete-event ordering without a central scheduler.
    """

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def advance(self, dt: float) -> float:
        """Charge ``dt`` seconds of local work; returns the new time."""
        if dt < 0:
            raise ValueError(f"negative time charge: {dt}")
        self.now += dt
        return self.now

    def merge(self, t: float) -> float:
        """Synchronize with an event that happened at remote time ``t``."""
        if t > self.now:
            self.now = t
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self.now:.9f})"


class BudgetedClock(VirtualClock):
    """A rank clock that enforces a virtual-time budget.

    The job service installs one per worker (before rank threads start)
    when a job carries a virtual-time quota: the first :meth:`advance` or
    :meth:`merge` that crosses the budget raises
    :class:`~repro.errors.TimeBudgetExceeded`, stopping the rank exactly at
    the quota boundary.  The default :class:`VirtualClock` path is
    untouched — unbudgeted jobs pay nothing for this feature.

    The charge that crosses the line is still applied before raising, so
    ``clock.now`` on the aborted rank records where the quota cut it off.
    """

    __slots__ = ("budget",)

    def __init__(self, budget: float, start: float = 0.0):
        super().__init__(start)
        if budget <= 0:
            raise ValueError(f"non-positive virtual-time budget: {budget}")
        self.budget = float(budget)

    def _check(self) -> None:
        if self.now > self.budget:
            from ..errors import TimeBudgetExceeded
            raise TimeBudgetExceeded(self.budget, self.now)

    def advance(self, dt: float) -> float:
        super().advance(dt)
        self._check()
        return self.now

    def merge(self, t: float) -> float:
        super().merge(t)
        self._check()
        return self.now


class CostModel:
    """Pure functions from operation descriptions to virtual seconds."""

    def __init__(self, params: LinkParams = DEFAULT_PARAMS):
        self.params = params

    # -- wire -----------------------------------------------------------

    def wire_time(self, nbytes: int) -> float:
        """Serialization time of ``nbytes`` on the wire (no latency)."""
        return nbytes / self.params.bandwidth

    def eager_time(self, nbytes: int) -> float:
        """One-way time of an eager contiguous message.

        Eager copies through a bounce buffer on both sides (pipelined with
        the wire, hence the faster rate) but pays no handshake.
        """
        p = self.params
        return (p.latency + self.wire_time(nbytes)
                + 2.0 * nbytes / p.eager_copy_bandwidth + p.msg_overhead)

    def rndv_time(self, nbytes: int) -> float:
        """One-way time of a rendezvous (zero-copy) contiguous message."""
        p = self.params
        return (p.latency + p.rndv_handshake + self.wire_time(nbytes)
                + nbytes / p.rndv_reg_bandwidth + p.msg_overhead)

    def contig_time(self, nbytes: int) -> float:
        """One-way time of a contiguous message under protocol selection."""
        from .transitions import message_is_eager
        if message_is_eager(nbytes, self.params.eager_limit):
            return self.eager_time(nbytes)
        return self.rndv_time(nbytes)

    def iov_time(self, entry_sizes: list[int] | tuple[int, ...]) -> float:
        """One-way time of a scatter/gather message.

        The iovec path always behaves like rendezvous (zero-copy of each
        entry) and therefore has no eager/rendezvous discontinuity, which is
        why ``custom`` is smooth across the Fig. 7 dip.
        """
        p = self.params
        total = sum(entry_sizes)
        return (p.latency + p.iov_base_overhead
                + p.iov_region_overhead * len(entry_sizes)
                + self.wire_time(total) + total / p.rndv_reg_bandwidth
                + p.msg_overhead)

    def retransmit_time(self, nbytes: int, nfrags: int) -> float:
        """One reliability retransmission round of ``nfrags`` fragments.

        Charged by the fault injector (:mod:`repro.ucp.faults`) on top of
        the message's normal wire time: the retransmitted bytes cross the
        wire again, each fragment pays its descriptor overhead, and the
        round pays one more message latency.
        """
        return (self.params.latency + self.wire_time(nbytes)
                + self.frag_overhead(nfrags))

    # -- memory ---------------------------------------------------------

    def copy_time(self, nbytes: int) -> float:
        """Vectorized memcpy/pack of ``nbytes``."""
        return nbytes / self.params.copy_bandwidth

    def typemap_pack_time(self, nscalars: int, nbytes: int) -> float:
        """Typemap-walking pack of a *gapped* derived type (slow path).

        The engine pipelines its copies with the transfer (Open MPI does),
        so the copy component runs at the pipelined bounce rate; the
        per-block descriptor walk is what makes gapped types slow.
        """
        return (nscalars * self.params.elem_cost
                + nbytes / self.params.eager_copy_bandwidth)

    def alloc_time(self, nbytes: int) -> float:
        """Fresh allocation incl. first touch."""
        return self.params.alloc_base + nbytes / self.params.alloc_bandwidth

    # -- software layers --------------------------------------------------

    def frag_overhead(self, nfrags: int) -> float:
        """Descriptor cost of ``nfrags`` pipeline fragments."""
        return nfrags * self.params.per_frag_overhead

    def callback_time(self, ncalls: int) -> float:
        """Cost of crossing the custom-datatype callback boundary."""
        return ncalls * self.params.callback_overhead

    def pickle_time(self, inband_bytes: int) -> float:
        """One pickle.dumps or pickle.loads over ``inband_bytes``."""
        return self.params.pickle_base + inband_bytes / self.params.pickle_bandwidth

    def probe_time(self) -> float:
        """One probe/mprobe round."""
        return self.params.probe_overhead
