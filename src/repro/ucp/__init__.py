"""Simulated UCP transport: tag matching, protocols, virtual-time cost model.

This package is the substitute for UCX/UCP plus the InfiniBand fabric of the
paper's testbed (see DESIGN.md §2).  Real bytes move through it; time is
charged from :class:`~repro.ucp.netsim.CostModel`.
"""

from .constants import (DATATYPE_CONTIG, DATATYPE_GENERIC, DATATYPE_IOV,
                        TAG_FULL_MASK, match_mask, pack_tag, unpack_tag)
from .dtypes import ContigData, GenericData, HandlerData, IovData
from .faults import (FailureDetector, FaultInjector, FaultPlan,
                     ReliabilityConfig, ReliabilityStats)
from .memory import MemoryTracker
from .netsim import (DEFAULT_PARAMS, IOV_REGION_SOFT_LIMIT,
                     MIN_EFFICIENT_FRAGMENT_BYTES, MIN_EFFICIENT_REGION_BYTES,
                     CostModel, LinkParams, VirtualClock)
from .protocols import SendPlan, plan_send
from .tagmatch import PostedRecv, TagMatcher
from .context import (Endpoint, Fabric, RecvInfo, RecvRequest, SendRequest,
                      UcpConfig, UcpContext, Worker)
from .transport import (Transport, TransportUnavailableError,
                        available_transports, create_transport,
                        resolve_transport_name)
from .wire import WireHeader, WireMessage

__all__ = [
    "DATATYPE_CONTIG", "DATATYPE_IOV", "DATATYPE_GENERIC",
    "TAG_FULL_MASK", "pack_tag", "unpack_tag", "match_mask",
    "ContigData", "IovData", "GenericData", "HandlerData",
    "FaultPlan", "ReliabilityConfig", "ReliabilityStats",
    "FaultInjector", "FailureDetector",
    "MemoryTracker",
    "LinkParams", "DEFAULT_PARAMS", "CostModel", "VirtualClock",
    "IOV_REGION_SOFT_LIMIT", "MIN_EFFICIENT_REGION_BYTES",
    "MIN_EFFICIENT_FRAGMENT_BYTES",
    "SendPlan", "plan_send",
    "TagMatcher", "PostedRecv",
    "UcpConfig", "UcpContext", "Fabric", "Worker", "Endpoint",
    "SendRequest", "RecvRequest", "RecvInfo",
    "WireHeader", "WireMessage",
    "Transport", "TransportUnavailableError", "available_transports",
    "create_transport", "resolve_transport_name",
]
