"""Protocol selection and cost planning for outgoing messages.

Given a data descriptor, :func:`plan_send` decides the transfer protocol and
splits the modelled cost into the three components the virtual-time machinery
needs:

* ``sender_cost`` — charged to the sender's clock at injection,
* ``wire_time`` — the latency + serialization component; for rendezvous-like
  protocols the transfer cannot start before both sides are ready,
* ``recv_cost`` — charged to the receiver's clock at delivery.

The split is arranged so that ``sender_cost + wire_time + recv_cost`` equals
the aggregate times of :class:`repro.ucp.netsim.CostModel`, keeping the bench
analytics and the engine in exact agreement.

Protocol rules (mirroring UCX and the paper's prototype):

* CONTIG <= eager_limit  -> **eager**: copies through bounce buffers on both
  sides, no handshake.  Sender may reuse its buffer immediately.
* CONTIG > eager_limit   -> **rndv**: zero-copy, but pays an RTS/CTS
  handshake and registration.  The switch is the Fig. 7 dip.
* IOV                     -> **iov**: always rendezvous-like scatter/gather
  with per-entry overhead; no eager/rndv discontinuity (why ``custom`` is
  smooth in Fig. 7).
* GENERIC                 -> **generic**: pack-callback pipeline; fragments
  are eagerly copied (they are transient), with per-fragment overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TransportError
from .dtypes import ContigData, GenericData, IovData
from .netsim import CostModel
from .transitions import select_protocol


@dataclass(frozen=True)
class SendPlan:
    """Protocol decision plus the three-way cost split."""

    protocol: str           # "eager" | "rndv" | "iov" | "generic"
    sender_cost: float
    wire_time: float
    recv_cost: float
    rndv: bool              # True -> transfer starts at max(send, recv ready)
    eager_copy: bool        # True -> chunks must be copied at injection

    @property
    def total_one_way(self) -> float:
        return self.sender_cost + self.wire_time + self.recv_cost


def plan_send(data, model: CostModel, frag_count: int = 0,
              force_rndv: bool = False) -> SendPlan:
    """Choose protocol and cost split for a descriptor.

    ``frag_count`` is only used for GENERIC (number of pipeline fragments).
    ``force_rndv`` forces the rendezvous protocol regardless of size —
    synchronous-send (MPI_Ssend) semantics, where completion implies the
    receive has started.
    """
    p = model.params
    if isinstance(data, ContigData):
        n = data.total_bytes
        # The eager/rendezvous boundary decision is shared with the protocol
        # model checker (repro.ucp.transitions), so the verified transition
        # table and the live fabric cannot drift apart at the cutoff.
        if select_protocol("contig", n, p.eager_limit, force_rndv) == "eager":
            bounce = n / p.eager_copy_bandwidth
            return SendPlan(
                protocol="eager",
                sender_cost=bounce + 0.5 * p.msg_overhead,
                wire_time=p.latency + model.wire_time(n),
                recv_cost=bounce + 0.5 * p.msg_overhead,
                rndv=False, eager_copy=True)
        return SendPlan(
            protocol="rndv",
            sender_cost=0.5 * p.msg_overhead + n / p.rndv_reg_bandwidth,
            wire_time=p.latency + p.rndv_handshake + model.wire_time(n),
            recv_cost=0.5 * p.msg_overhead,
            rndv=True, eager_copy=False)
    if isinstance(data, IovData):
        n = data.total_bytes
        k = data.entry_count
        half_sg = 0.5 * (p.iov_base_overhead + k * p.iov_region_overhead)
        return SendPlan(
            protocol="iov",
            sender_cost=0.5 * p.msg_overhead + half_sg + n / p.rndv_reg_bandwidth,
            wire_time=p.latency + model.wire_time(n),
            recv_cost=0.5 * p.msg_overhead + half_sg,
            rndv=True, eager_copy=False)
    if isinstance(data, GenericData):
        n = data.total_bytes
        oh = model.frag_overhead(max(frag_count, 1))
        return SendPlan(
            protocol="generic",
            sender_cost=0.5 * p.msg_overhead + 0.5 * oh,
            wire_time=p.latency + model.wire_time(n),
            recv_cost=0.5 * p.msg_overhead + 0.5 * oh,
            rndv=False, eager_copy=True)
    raise TransportError(f"cannot plan a send for descriptor {type(data).__name__}")


def wait_semantics(protocol: str, rndv: bool) -> str:
    """Why a send's ``wait()`` can block under this protocol.

    Used by the sanitizer as evidence text in wait-for edges: eager sends
    complete at injection and can never participate in a deadlock cycle,
    while rendezvous-like protocols block until the matching receive runs.
    """
    if not rndv:
        return "eager: wait cannot block"
    if protocol == "iov":
        return "iov rendezvous: regions are pulled when the receive runs"
    if protocol == "rndv":
        return "rendezvous: blocks until the matching receive runs"
    return f"{protocol}: rendezvous-like, blocks on the receiver"
