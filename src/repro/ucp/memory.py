"""Allocation accounting and buffer pooling for the simulated node.

The paper repeatedly points at *memory* costs, not just wire costs: full
serialization "can potentially double memory usage", and receive-side
allocations are why no pickle strategy reaches the roofline in Figs. 8-9.
:class:`MemoryTracker` records every transient allocation the engine or a
serialization strategy makes, both to charge virtual time for it and to let
tests assert the memory-amplification properties the paper claims (e.g. the
basic-pickle path allocates ~2x the payload, the out-of-band path does not).

:class:`BufferPool` recycles those transient buffers (packed bounce buffers,
fragment scratch, eager wire staging) through size-classed free lists so the
hot send/receive path stops hitting the allocator.  Pooling is a *wall-clock*
optimization only: :meth:`MemoryTracker.acquire` charges exactly the same
accounting and virtual time as :meth:`MemoryTracker.allocate`, so every
figure and every memory assertion is unchanged whether a buffer came from
the pool or the allocator.
"""

from __future__ import annotations

import threading

import numpy as np

from ..errors import MemoryQuotaError, PoolLeakError
from .netsim import CostModel, VirtualClock


class BufferPool:
    """Size-classed free lists of uint8 scratch buffers.

    ``acquire(n)`` returns a length-``n`` view of a power-of-two backing
    array, reusing a pooled one when available; ``release(buf)`` returns the
    backing array (resolved through the numpy ``base`` chain, so any view of
    a pooled buffer can be released).  Buffers come back **dirty** — every
    pool user overwrites before reading.

    The pool is intentionally forgiving at the release boundary, because the
    transport returns whatever chunks a message carried: releasing a buffer
    the pool does not own (a user buffer riding a rendezvous send) or
    releasing twice (the engine and the delivery path both letting go of a
    bounce buffer) is a silent no-op, guarded by the outstanding set.

    Thread contract: ``acquire`` is called only by the owning rank's thread;
    ``release`` may be called from any rank's thread (delivery returns eager
    staging to the *sender's* pool), hence the lock.
    """

    #: Smallest class; sub-64-byte requests share one class.
    MIN_CLASS = 64

    def __init__(self, max_per_class: int = 8,
                 max_pooled_class: int = 1 << 24):
        self._lock = threading.Lock()
        self._free: dict[int, list[np.ndarray]] = {}
        #: Backing arrays currently handed out, keyed by id().  The strong
        #: reference keeps the id stable until release; anything never
        #: released lives exactly as long as it would have unpooled.
        self._out: dict[int, np.ndarray] = {}
        self.max_per_class = max_per_class
        #: Classes above this are never cached (release drops them).
        self.max_pooled_class = max_pooled_class
        self.hits = 0
        self.misses = 0
        self.returned = 0
        self.dropped = 0

    @classmethod
    def class_size(cls, nbytes: int) -> int:
        """The power-of-two size class serving an ``nbytes`` request."""
        return max(cls.MIN_CLASS, 1 << (nbytes - 1).bit_length()) \
            if nbytes > 1 else cls.MIN_CLASS

    def _new_root(self, size: int) -> np.ndarray:
        """Allocate one fresh backing array (the pool-miss path).

        Subclass seam: the shared-memory transport's
        :class:`~repro.ucp.transport.shm.ArenaBufferPool` carves these
        from a ``multiprocessing.shared_memory`` segment instead, which is
        what lets PackPlans execute directly into cross-process memory.
        """
        return np.empty(size, dtype=np.uint8)

    def _resolve_root(self, buf):
        """Map any view of a pooled buffer back to its backing array."""
        root = buf
        while isinstance(root, np.ndarray) and isinstance(root.base,
                                                          np.ndarray):
            root = root.base
        return root

    def acquire(self, nbytes: int) -> np.ndarray:
        """A uint8 buffer of exactly ``nbytes`` (a view of a pooled class)."""
        if nbytes < 0:
            raise ValueError(f"negative acquire: {nbytes}")
        if nbytes == 0:
            return np.empty(0, dtype=np.uint8)
        size = self.class_size(nbytes)
        with self._lock:
            free = self._free.get(size)
            if free:
                root = free.pop()
                self.hits += 1
            else:
                root = None
                self.misses += 1
        if root is None:
            root = self._new_root(size)
        with self._lock:
            self._out[id(root)] = root
        return root[:nbytes]

    def release(self, buf) -> bool:
        """Return ``buf``'s backing array to the pool.

        Returns False (and does nothing) for buffers the pool does not
        currently own — foreign arrays and double releases.
        """
        root = self._resolve_root(buf)
        if not isinstance(root, np.ndarray):
            return False
        with self._lock:
            owned = self._out.pop(id(root), None)
            if owned is None:
                return False
            self.returned += 1
            size = owned.shape[0]
            if size <= self.max_pooled_class:
                free = self._free.setdefault(size, [])
                if len(free) < self.max_per_class:
                    free.append(owned)
                    return True
            self.dropped += 1
            return True

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "returned": self.returned, "dropped": self.dropped,
                    "outstanding": len(self._out),
                    "pooled_buffers": sum(len(v) for v in
                                          self._free.values()),
                    "pooled_bytes": sum(k * len(v) for k, v in
                                        self._free.items())}

    def reclaim(self) -> int:
        """Force-return every outstanding buffer to the free lists.

        Faulted jobs can strand staging buffers: a crashed rank never
        waits its requests, an abandoned transfer never delivers.  The
        runtime calls this at teardown (only on fault-injected fabrics)
        so ``snapshot()["outstanding"]`` ends at zero and the stranded
        bytes are accounted as returned rather than leaked.  Returns the
        number of buffers reclaimed.
        """
        with self._lock:
            stranded = list(self._out.values())
            self._out.clear()
            for root in stranded:
                self.returned += 1
                size = root.shape[0]
                if size <= self.max_pooled_class:
                    free = self._free.setdefault(size, [])
                    if len(free) < self.max_per_class:
                        free.append(root)
                        continue
                self.dropped += 1
            return len(stranded)

    def reset_for_job(self, job: str = "<unknown>") -> dict[str, int]:
        """Re-arm the pool at a job boundary, keeping the free lists warm.

        Asserts that the finished job returned every buffer it took:
        any outstanding buffer raises :class:`~repro.errors.PoolLeakError`
        naming ``job``, so a leak is attributed to the job that caused it
        instead of surfacing as unexplained growth hundreds of jobs later.
        On a balanced pool the per-job counters (hits/misses/returned/
        dropped) are zeroed while the cached free lists — the whole point
        of a warm worker set — are preserved.  Returns the warm-state
        summary (``pooled_buffers``/``pooled_bytes``).
        """
        with self._lock:
            if self._out:
                outstanding = len(self._out)
                leaked = sum(b.shape[0] for b in self._out.values())
                raise PoolLeakError(job, outstanding, leaked)
            self.hits = self.misses = 0
            self.returned = self.dropped = 0
            return {"pooled_buffers": sum(len(v) for v in
                                          self._free.values()),
                    "pooled_bytes": sum(k * len(v) for k, v in
                                        self._free.items())}

    def clear(self) -> None:
        """Drop the free lists and reset the statistics."""
        with self._lock:
            self._free.clear()
            self._out.clear()
            self.hits = self.misses = 0
            self.returned = self.dropped = 0


class MemoryTracker:
    """Counts live and cumulative transient bytes per rank."""

    def __init__(self):
        self._lock = threading.Lock()
        self.live_bytes = 0
        self.peak_bytes = 0
        self.total_allocated = 0
        self.allocation_count = 0
        #: Per-job transient-memory quota (bytes of live transient
        #: allocations); None — the default — disables the check entirely.
        #: Set by the job service before rank threads start, never mid-job.
        self.byte_ceiling: int | None = None
        self.pool = BufferPool()

    def _account(self, nbytes: int) -> None:
        with self._lock:
            ceiling = self.byte_ceiling
            if ceiling is not None and self.live_bytes + nbytes > ceiling:
                # Refuse *before* booking the bytes or touching the pool,
                # so a quota breach leaves accounting and pool balanced.
                live = self.live_bytes
            else:
                self.live_bytes += nbytes
                self.peak_bytes = max(self.peak_bytes, self.live_bytes)
                self.total_allocated += nbytes
                self.allocation_count += 1
                return
        raise MemoryQuotaError(ceiling, live, nbytes)

    def allocate(self, nbytes: int, clock: VirtualClock | None = None,
                 model: CostModel | None = None) -> np.ndarray:
        """Allocate a fresh uint8 buffer, charging first-touch cost."""
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        self._account(nbytes)
        if clock is not None and model is not None:
            clock.advance(model.alloc_time(nbytes))
        return np.zeros(nbytes, dtype=np.uint8)

    def acquire(self, nbytes: int, clock: VirtualClock | None = None,
                model: CostModel | None = None) -> np.ndarray:
        """Pool-backed :meth:`allocate`.

        Identical accounting and virtual-time charge — an acquired buffer is
        indistinguishable from an allocated one to the cost model and to
        every memory assertion — but the bytes come from :attr:`pool` when
        it has a fit (and come back dirty, not zeroed; callers overwrite).
        """
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        self._account(nbytes)
        if clock is not None and model is not None:
            clock.advance(model.alloc_time(nbytes))
        return self.pool.acquire(nbytes)

    def release(self, buf_or_nbytes) -> None:
        """Return bytes to the tracker (buffers are garbage-collected)."""
        nbytes = (buf_or_nbytes if isinstance(buf_or_nbytes, int)
                  else memoryview(buf_or_nbytes).nbytes)
        with self._lock:
            self.live_bytes = max(0, self.live_bytes - nbytes)

    def recycle(self, buf) -> None:
        """Release ``buf`` from the accounting *and* return it to the pool."""
        self.release(buf)
        self.pool.release(buf)

    def snapshot(self) -> dict:
        with self._lock:
            snap = {"live_bytes": self.live_bytes,
                    "peak_bytes": self.peak_bytes,
                    "total_allocated": self.total_allocated,
                    "allocation_count": self.allocation_count}
        snap["pool"] = self.pool.snapshot()
        return snap

    def reset(self) -> None:
        with self._lock:
            self.live_bytes = 0
            self.peak_bytes = 0
            self.total_allocated = 0
            self.allocation_count = 0
            self.byte_ceiling = None
        self.pool.clear()

    def reset_for_job(self, job: str = "<unknown>") -> dict[str, int]:
        """Re-arm accounting at a job boundary, keeping the pool warm.

        The pool check runs first (raising
        :class:`~repro.errors.PoolLeakError` naming ``job`` if the
        finished job left buffers outstanding); only a balanced tracker is
        re-armed, so counters never silently absorb a leak.  Unlike
        :meth:`reset`, the pool's free lists survive — a recycled tracker
        serves the next job's buffers from cache.
        """
        warm = self.pool.reset_for_job(job)
        with self._lock:
            self.live_bytes = 0
            self.peak_bytes = 0
            self.total_allocated = 0
            self.allocation_count = 0
            self.byte_ceiling = None
        return warm
