"""Allocation accounting for the simulated node.

The paper repeatedly points at *memory* costs, not just wire costs: full
serialization "can potentially double memory usage", and receive-side
allocations are why no pickle strategy reaches the roofline in Figs. 8-9.
:class:`MemoryTracker` records every transient allocation the engine or a
serialization strategy makes, both to charge virtual time for it and to let
tests assert the memory-amplification properties the paper claims (e.g. the
basic-pickle path allocates ~2x the payload, the out-of-band path does not).
"""

from __future__ import annotations

import threading

import numpy as np

from .netsim import CostModel, VirtualClock


class MemoryTracker:
    """Counts live and cumulative transient bytes per rank."""

    def __init__(self):
        self._lock = threading.Lock()
        self.live_bytes = 0
        self.peak_bytes = 0
        self.total_allocated = 0
        self.allocation_count = 0

    def allocate(self, nbytes: int, clock: VirtualClock | None = None,
                 model: CostModel | None = None) -> np.ndarray:
        """Allocate a fresh uint8 buffer, charging first-touch cost."""
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        with self._lock:
            self.live_bytes += nbytes
            self.peak_bytes = max(self.peak_bytes, self.live_bytes)
            self.total_allocated += nbytes
            self.allocation_count += 1
        if clock is not None and model is not None:
            clock.advance(model.alloc_time(nbytes))
        return np.zeros(nbytes, dtype=np.uint8)

    def release(self, buf_or_nbytes) -> None:
        """Return bytes to the tracker (buffers are garbage-collected)."""
        nbytes = (buf_or_nbytes if isinstance(buf_or_nbytes, int)
                  else memoryview(buf_or_nbytes).nbytes)
        with self._lock:
            self.live_bytes = max(0, self.live_bytes - nbytes)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {"live_bytes": self.live_bytes,
                    "peak_bytes": self.peak_bytes,
                    "total_allocated": self.total_allocated,
                    "allocation_count": self.allocation_count}

    def reset(self) -> None:
        with self._lock:
            self.live_bytes = 0
            self.peak_bytes = 0
            self.total_allocated = 0
            self.allocation_count = 0
