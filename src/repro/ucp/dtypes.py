"""Transport data descriptors — the ``UCP_DATATYPE_*`` analogues.

The paper's prototype selects among UCP datatypes when moving a message:
``UCP_DATATYPE_CONTIG`` for a single contiguous buffer,
``UCP_DATATYPE_IOV`` for scatter/gather (the custom-datatype path:
"the packed data is the first element in the iovec list, following which the
iovec array is filled with any memory region pointers"), and
``UCP_DATATYPE_GENERIC`` for callback-driven packing.  These descriptor
classes carry the same information for our simulated transport.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from ..errors import TransportError
from .constants import DATATYPE_CONTIG, DATATYPE_GENERIC, DATATYPE_IOV


def _u8view(buf, writable: bool) -> np.ndarray:
    if isinstance(buf, np.ndarray):
        if not buf.flags.c_contiguous:
            raise TransportError("transport buffers must be C-contiguous")
        v = buf.view(np.uint8).reshape(-1)
    else:
        mv = memoryview(buf)
        if not mv.contiguous:
            raise TransportError("transport buffers must be contiguous")
        v = np.frombuffer(mv, dtype=np.uint8)
    if writable and not v.flags.writeable:
        raise TransportError("receive buffer is read-only")
    return v


class ContigData:
    """UCP_DATATYPE_CONTIG: one contiguous buffer of ``nbytes``."""

    kind = DATATYPE_CONTIG

    def __init__(self, buffer: Any, nbytes: int | None = None,
                 writable: bool = False):
        self.view = _u8view(buffer, writable)
        self.nbytes = self.view.shape[0] if nbytes is None else int(nbytes)
        if self.nbytes > self.view.shape[0]:
            raise TransportError(
                f"ContigData length {self.nbytes} exceeds buffer of "
                f"{self.view.shape[0]} bytes")

    @property
    def total_bytes(self) -> int:
        return self.nbytes

    def entries(self) -> list[np.ndarray]:
        return [self.view[: self.nbytes]]


class IovData:
    """UCP_DATATYPE_IOV: an ordered list of contiguous entries.

    ``packed_entries`` marks how many leading entries are in-band packed
    data (custom-datatype framing); pure scatter/gather uses 0.
    """

    kind = DATATYPE_IOV

    def __init__(self, buffers: Sequence[Any], writable: bool = False,
                 packed_entries: int = 0):
        self._views = [_u8view(b, writable) for b in buffers]
        self.packed_entries = packed_entries
        if not 0 <= packed_entries <= len(self._views):
            raise TransportError(
                f"packed_entries {packed_entries} out of range for "
                f"{len(self._views)} entries")

    @property
    def total_bytes(self) -> int:
        return sum(v.shape[0] for v in self._views)

    @property
    def entry_count(self) -> int:
        return len(self._views)

    def entries(self) -> list[np.ndarray]:
        return list(self._views)


class GenericData:
    """UCP_DATATYPE_GENERIC: callback-driven pack/unpack pipeline.

    Send side supplies ``pack(offset, dst) -> used`` and ``total_bytes``;
    receive side supplies ``unpack(offset, src)``.  The transport drives the
    callbacks fragment by fragment (``frag_size`` picked by the worker
    config), charging per-fragment overhead.
    """

    kind = DATATYPE_GENERIC

    def __init__(self, total_bytes: int,
                 pack: Callable[[int, np.ndarray], int] | None = None,
                 unpack: Callable[[int, np.ndarray], None] | None = None):
        if total_bytes < 0:
            raise TransportError(f"negative generic size {total_bytes}")
        if pack is None and unpack is None:
            raise TransportError("GenericData needs a pack or unpack callback")
        self._total = total_bytes
        self.pack = pack
        self.unpack = unpack

    @property
    def total_bytes(self) -> int:
        return self._total

    def pack_entries(self, frag_size: int, pool=None) -> list[np.ndarray]:
        """Run the pack pipeline; returns the fragment list.

        With ``pool`` the fragment scratch is pool-acquired; the caller owns
        the fragments and returns them once they are staged on the wire.
        """
        if self.pack is None:
            raise TransportError("GenericData has no pack callback (recv-only)")
        frags: list[np.ndarray] = []
        offset = 0
        while offset < self._total:
            nbytes = min(frag_size, self._total - offset)
            dst = (np.empty(nbytes, dtype=np.uint8) if pool is None
                   else pool.acquire(nbytes))
            used = self.pack(offset, dst)
            if not isinstance(used, int) or used <= 0 or used > dst.shape[0]:
                raise TransportError(f"generic pack returned invalid used={used!r}")
            frags.append(dst[:used])
            offset += used
        return frags


class HandlerData:
    """Receive descriptor that defers scattering to a callback.

    The handler runs on the receiving thread at delivery time with the full
    :class:`~repro.ucp.wire.WireMessage`; it is how the MPI engine implements
    custom-datatype receives, where the destination of the region entries can
    depend on just-unpacked in-band data.  The handler returns the number of
    payload bytes it consumed (for truncation checking).
    """

    kind = "handler"

    def __init__(self, handler: Callable[[Any], int],
                 max_bytes: int | None = None):
        self.handler = handler
        #: Optional cap used for truncation detection before delivery.
        self.max_bytes = max_bytes

    @property
    def total_bytes(self) -> int:
        return -1 if self.max_bytes is None else self.max_bytes
