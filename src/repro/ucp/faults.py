"""Seeded fault injection and the reliability protocol for the fabric.

The paper's prototype rides on UCX, whose transports survive lossy links
through sequencing, acknowledgement and retransmission.  The simulated
fabric historically delivered every fragment intact, in order, exactly
once — so none of the pack/unpack, pooling or protocol machinery had ever
been exercised under failure.  This module makes the fabric falsifiable:

* :class:`FaultPlan` — a **seeded, deterministic** schedule of wire faults
  (fragment drop and corruption, message duplication, reordering and extra
  delay) plus rank **crash**/**stall** events pinned to virtual-clock
  times.  Every decision is a pure function of ``(seed, src, dst, seq,
  fragment, round)``, so the same plan replayed over the same program
  produces the identical fault trace regardless of thread interleaving.

* :class:`ReliabilityConfig` — the recovery protocol modelled on the
  sequencing layer of real transports: per-fragment CRC32 and sequence
  numbers ride the wire envelope, the receiver's tag-match path acknow-
  ledges (ACK) or rejects (NACK) fragments, and the sender retransmits
  with timeout + exponential backoff until the retry budget runs out.
  Every recovery round is charged through :mod:`repro.ucp.netsim` virtual
  time, so retries visibly cost latency and bandwidth in the figures.

* :class:`FailureDetector` — the job-wide view of crashed/finished ranks
  that blocking waits consult so surviving ranks surface
  ``MPI_ERR_PROC_FAILED`` instead of hanging (ULFM semantics).

* :class:`FaultInjector` — the per-fabric interposer that sits between
  :meth:`repro.ucp.context.Endpoint.tag_send` and the destination tag
  matcher and applies all of the above.

Determinism contract: the injector resolves each message's fault/recovery
history synchronously at injection time on the sender's thread.  Per-
channel (src, dst) state — sequence numbers, the reorder hold slot and
the event trace — is only touched by the sending rank's thread, so traces
are reproducible per channel even though ranks interleave freely.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from ..errors import ProcFailedError, RankCrashError
from .transitions import (duplicate_suppressed, resolve_retries,
                          retry_backoff)
from .wire import WireMessage

__all__ = [
    "FaultPlan", "ReliabilityConfig", "ReliabilityStats",
    "FailureDetector", "FaultInjector", "fragment_bounds", "fragment_crcs",
]


def _decide(seed: int, kind: str, src: int, dst: int, seq: int,
            frag: int, rnd: int, probability: float) -> bool:
    """One deterministic Bernoulli draw.

    The draw is a pure function of its arguments (CRC32 of a canonical
    key string), never of shared RNG state, so concurrent channels cannot
    perturb each other and replays are exact.
    """
    if probability <= 0.0:
        return False
    if probability >= 1.0:
        return True
    key = f"{seed}|{kind}|{src}|{dst}|{seq}|{frag}|{rnd}"
    draw = zlib.crc32(key.encode("ascii")) / 0xFFFFFFFF
    return draw < probability


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, virtual-time-scheduled schedule of fabric faults.

    All probabilities are per-decision (per fragment for ``drop`` and
    ``corrupt``, per message for the rest) and are resolved
    deterministically from ``seed`` — see :func:`_decide`.
    """

    seed: int = 0
    #: Per-fragment probability that the fragment never arrives.
    drop: float = 0.0
    #: Per-fragment probability that payload bytes are flipped in flight.
    corrupt: float = 0.0
    #: Per-message probability that the message arrives twice.
    duplicate: float = 0.0
    #: Per-message probability that the message swaps places with the
    #: next message on the same channel.
    reorder: float = 0.0
    #: Per-message probability of extra wire delay.
    delay: float = 0.0
    #: Virtual seconds added when a message is delayed.
    delay_time: float = 50e-6
    #: Half-open range of per-channel sequence numbers the plan applies to
    #: (None = every message).  Lets tests target "the first message".
    window: Optional[tuple[int, int]] = None
    #: Restrict faults to these ``(src, dst)`` channels (None = all).
    channels: Optional[frozenset] = None
    #: Rank -> virtual time at which the rank crashes (disappears).
    crash: dict = field(default_factory=dict)
    #: Rank -> ``(at, duration)``: a one-shot virtual-time stall.
    stall: dict = field(default_factory=dict)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_dict(cls, spec: dict) -> "FaultPlan":
        """Build a plan from a JSON-style dict (the CLI fixture format)."""
        spec = dict(spec)
        window = spec.get("window")
        if window is not None:
            spec["window"] = (int(window[0]), int(window[1]))
        channels = spec.get("channels")
        if channels is not None:
            spec["channels"] = frozenset((int(s), int(d))
                                         for s, d in channels)
        crash = spec.get("crash")
        if crash is not None:
            spec["crash"] = {int(r): float(t) for r, t in crash.items()}
        stall = spec.get("stall")
        if stall is not None:
            spec["stall"] = {int(r): (float(a), float(d))
                             for r, (a, d) in stall.items()}
        return cls(**spec)

    def to_dict(self) -> dict:
        doc = {
            "seed": self.seed, "drop": self.drop, "corrupt": self.corrupt,
            "duplicate": self.duplicate, "reorder": self.reorder,
            "delay": self.delay, "delay_time": self.delay_time,
        }
        if self.window is not None:
            doc["window"] = list(self.window)
        if self.channels is not None:
            doc["channels"] = sorted([s, d] for s, d in self.channels)
        if self.crash:
            doc["crash"] = {str(r): t for r, t in sorted(self.crash.items())}
        if self.stall:
            doc["stall"] = {str(r): list(v)
                            for r, v in sorted(self.stall.items())}
        return doc

    def with_overrides(self, **kw) -> "FaultPlan":
        return replace(self, **kw)

    # -- decisions --------------------------------------------------------

    def affects(self, src: int, dst: int, seq: int) -> bool:
        """Whether wire faults apply to this message at all."""
        if self.channels is not None and (src, dst) not in self.channels:
            return False
        if self.window is not None \
                and not self.window[0] <= seq < self.window[1]:
            return False
        return True

    def frag_fates(self, src: int, dst: int, seq: int, frags,
                   rnd: int = 0) -> tuple[set, set]:
        """``(dropped, corrupted)`` fragment indices for one (re)try round.

        ``frags`` is an iterable of fragment indices under consideration
        (all of them for round 0, the retransmitted subset afterwards).
        A fragment both dropped and corrupted counts as dropped.
        """
        if not self.affects(src, dst, seq):
            return set(), set()
        dropped, corrupted = set(), set()
        for f in frags:
            if _decide(self.seed, "drop", src, dst, seq, f, rnd, self.drop):
                dropped.add(f)
            elif _decide(self.seed, "corrupt", src, dst, seq, f, rnd,
                         self.corrupt):
                corrupted.add(f)
        return dropped, corrupted

    def message_fates(self, src: int, dst: int, seq: int) -> dict:
        """Message-level fates: ``{"duplicate", "reorder", "delay"}``."""
        if not self.affects(src, dst, seq):
            return {"duplicate": False, "reorder": False, "delay": False}
        return {
            "duplicate": _decide(self.seed, "dup", src, dst, seq, 0, 0,
                                 self.duplicate),
            "reorder": _decide(self.seed, "reorder", src, dst, seq, 0, 0,
                               self.reorder),
            "delay": _decide(self.seed, "delay", src, dst, seq, 0, 0,
                             self.delay),
        }


@dataclass(frozen=True)
class ReliabilityConfig:
    """Knobs of the sequencing/ACK/retransmission recovery protocol."""

    enabled: bool = True
    #: Retransmission rounds before the transfer is abandoned
    #: (``MPI_ERR_PROC_FAILED`` at both ends).
    retry_limit: int = 4
    #: Virtual seconds before the first retransmission fires.
    retry_timeout: float = 100e-6
    #: Multiplier applied to the timeout each further round.
    backoff: float = 2.0
    #: Receiver-side processing cost of one ACK/NACK round.
    ack_overhead: float = 0.3e-6

    @classmethod
    def from_dict(cls, spec) -> "ReliabilityConfig":
        if isinstance(spec, cls):
            return spec
        if spec is True:
            return cls()
        return cls(**dict(spec))


class ReliabilityStats:
    """Per-rank reliability counters (thread-safe; any rank may charge)."""

    FIELDS = ("retransmits", "retransmitted_bytes", "crc_failures",
              "duplicates_dropped", "duplicates_delivered", "ack_rounds",
              "backoff_time", "lost_messages", "lost_fragments",
              "corrupted_delivered", "reorders_healed", "reordered",
              "delays", "exhausted")

    def __init__(self):
        self._lock = threading.Lock()
        for f in self.FIELDS:
            setattr(self, f, 0.0 if f == "backoff_time" else 0)

    def add(self, **kw) -> None:
        with self._lock:
            for k, v in kw.items():
                setattr(self, k, getattr(self, k) + v)

    def snapshot(self) -> dict:
        with self._lock:
            return {f: getattr(self, f) for f in self.FIELDS}


class FailureDetector:
    """Job-wide knowledge of dead, finished and aborted ranks.

    Blocking waits poll :meth:`check_hopeless` so that an operation whose
    every possible peer has crashed (or finished without matching)
    surfaces an error in bounded time instead of hanging — the "surviving
    ranks keep running" half of the ULFM semantics.
    """

    def __init__(self, nprocs: int):
        self.nprocs = nprocs
        self._lock = threading.Lock()
        self._dead: dict[int, str] = {}
        self._finished: set[int] = set()
        self._abort_reason: Optional[str] = None

    # -- state changes (any thread) ---------------------------------------

    def mark_dead(self, rank: int, reason: str = "process failed") -> None:
        with self._lock:
            self._dead.setdefault(rank, reason)

    def mark_finished(self, rank: int) -> None:
        with self._lock:
            self._finished.add(rank)

    def abort_job(self, reason: str) -> bool:
        """MPI_ERRORS_ARE_FATAL: poison every subsequent blocking wait.

        Returns True when this call recorded the abort (first fatal error
        wins); later calls are no-ops so the original reason survives.
        """
        with self._lock:
            if self._abort_reason is None:
                self._abort_reason = reason
                return True
            return False

    # -- queries ----------------------------------------------------------

    def is_dead(self, rank: int) -> bool:
        with self._lock:
            return rank in self._dead

    def dead_ranks(self) -> tuple[int, ...]:
        with self._lock:
            return tuple(sorted(self._dead))

    @property
    def aborted(self) -> Optional[str]:
        with self._lock:
            return self._abort_reason

    def check_hopeless(self, targets, what: str = "wait") -> None:
        """Raise when ``targets`` can no longer satisfy a blocking wait.

        * job aborted (fatal error handler fired anywhere) — raise
          :class:`ProcFailedError` naming the abort reason;
        * every target is dead or finished, with at least one dead —
          :class:`ProcFailedError` naming the dead peers;
        * every target finished cleanly (no crash) — the wait is an
          application bug (a peer returned without matching); raise
          :class:`ProcFailedError` flagging that too, so faulted jobs
          always terminate.
        """
        with self._lock:
            reason = self._abort_reason
            dead = set(self._dead) & set(targets)
            hopeless = all(t in self._dead or t in self._finished
                           for t in targets)
        if reason is not None:
            raise ProcFailedError(
                f"job aborted (MPI_ERRORS_ARE_FATAL): {reason}",
                failed_ranks=dead)
        if not hopeless:
            return
        if dead:
            raise ProcFailedError(
                f"{what} depends on failed rank(s) "
                f"{','.join(str(r) for r in sorted(dead))}",
                failed_ranks=dead)
        raise ProcFailedError(
            f"{what} can never complete: all candidate peer(s) "
            f"{','.join(str(t) for t in sorted(set(targets)))} finished "
            f"without a matching operation")


def fragment_bounds(chunks, frag_size: int) -> list[tuple[int, int, int]]:
    """Split wire chunks into reliability fragments.

    Returns ``(chunk_index, start, stop)`` triples: each chunk is cut into
    ``frag_size`` pieces, mirroring how the transport would packetize the
    payload.  Empty chunks still occupy one (empty) fragment so envelopes
    always carry at least one sequence number.
    """
    bounds = []
    for ci, chunk in enumerate(chunks):
        n = int(chunk.shape[0])
        if n == 0:
            bounds.append((ci, 0, 0))
            continue
        for start in range(0, n, frag_size):
            bounds.append((ci, start, min(start + frag_size, n)))
    return bounds or [(0, 0, 0)]


def fragment_crcs(chunks, bounds) -> tuple[int, ...]:
    """CRC32 of every fragment (the wire envelope's integrity words)."""
    out = []
    for ci, start, stop in bounds:
        if ci < len(chunks) and stop > start:
            piece = np.ascontiguousarray(chunks[ci][start:stop])
            out.append(zlib.crc32(piece.tobytes()))
        else:
            out.append(0)
    return tuple(out)


class _Channel:
    """Per-(src, dst) injector state; touched only by the sender thread."""

    __slots__ = ("seq", "held", "trace")

    def __init__(self):
        self.seq = 0
        self.held: Optional[tuple] = None
        self.trace: list[dict] = []

    def next_seq(self) -> int:
        s = self.seq
        self.seq += 1
        return s


class FaultInjector:
    """Interposes on fragment delivery between endpoint and tag matcher."""

    def __init__(self, nworkers: int, plan: Optional[FaultPlan],
                 reliability: Optional[ReliabilityConfig]):
        self.plan = plan or FaultPlan()
        self.reliability = reliability or ReliabilityConfig(enabled=False)
        self.detector = FailureDetector(nworkers)
        self.stats = [ReliabilityStats() for _ in range(nworkers)]
        self._channels: dict[tuple[int, int], _Channel] = {}
        self._channels_lock = threading.Lock()
        self._stalled: set[int] = set()
        self._stall_lock = threading.Lock()

    # -- helpers ----------------------------------------------------------

    def _channel(self, src: int, dst: int) -> _Channel:
        key = (src, dst)
        with self._channels_lock:
            ch = self._channels.get(key)
            if ch is None:
                ch = self._channels[key] = _Channel()
            return ch

    def traces(self) -> dict[str, list[dict]]:
        """Per-channel fault/recovery event logs (deterministic per seed)."""
        with self._channels_lock:
            items = sorted(self._channels.items())
        return {f"{s}->{d}": list(ch.trace) for (s, d), ch in items}

    @staticmethod
    def _sanitizer(worker):
        return worker.sanitizer

    # -- rank schedule (crash / stall) -------------------------------------

    def on_progress(self, worker) -> None:
        """Crash/stall checkpoint; called at every fabric interaction."""
        rank = worker.index
        st = self.plan.stall.get(rank)
        if st is not None:
            with self._stall_lock:
                due = worker.clock.now >= st[0] and rank not in self._stalled
                if due:
                    self._stalled.add(rank)
            if due:
                worker.clock.advance(st[1])
        ct = self.plan.crash.get(rank)
        if ct is not None and worker.clock.now >= ct \
                and not self.detector.is_dead(rank):
            self.detector.mark_dead(rank, "crashed by fault plan")
            raise RankCrashError(rank, worker.clock.now)

    # -- the interposition point -------------------------------------------

    def transmit(self, worker, dst_worker, msg: WireMessage, model) -> None:
        """Apply the fault plan (and reliability recovery) to one message.

        Runs on the sender's thread at injection time; resolves the whole
        fault/retransmission history synchronously, charges the resulting
        virtual time, then either deposits the (intact or corrupted)
        message at the destination matcher or drops it.
        """
        src, dst = worker.index, dst_worker.index
        p = model.params
        ch = self._channel(src, dst)
        seq = ch.next_seq()
        hdr = msg.header
        hdr.seq = seq

        bounds = fragment_bounds(msg.chunks, p.frag_size)
        hdr.frag_crcs = fragment_crcs(msg.chunks, bounds)

        frags = range(len(bounds))
        dropped, corrupted = self.plan.frag_fates(src, dst, seq, frags)
        fates = self.plan.message_fates(src, dst, seq)

        if self.reliability.enabled:
            self._transmit_reliable(worker, dst_worker, msg, model, ch, seq,
                                    bounds, dropped, corrupted, fates)
        else:
            self._transmit_raw(worker, dst_worker, msg, model, ch, seq,
                               bounds, dropped, corrupted, fates)

    # -- unreliable datagram semantics -------------------------------------

    def _transmit_raw(self, worker, dst_worker, msg, model, ch, seq,
                      bounds, dropped, corrupted, fates) -> None:
        src, dst = worker.index, dst_worker.index
        stats = self.stats[src]

        if dropped:
            # Any lost fragment kills the whole datagram: the receiver
            # cannot reassemble a partial message without sequencing.
            ch.trace.append({"event": "lost", "src": src, "dst": dst,
                             "seq": seq, "frags": sorted(dropped)})
            stats.add(lost_messages=1, lost_fragments=len(dropped))
            san = self._sanitizer(worker)
            if san is not None:
                san.emit(
                    "RPD450",
                    f"message #{seq} of {msg.total_bytes} bytes from rank "
                    f"{src} to rank {dst} lost {len(dropped)} fragment(s) "
                    f"on the wire and no reliability protocol is enabled; "
                    f"the message will never arrive",
                    rank=src,
                    hint="enable the reliability protocol "
                         "(run(..., reliability=True)) or treat the "
                         "fabric as lossy")
            pool = worker.memory.pool
            for chunk in msg.chunks:
                pool.release(chunk)
            if msg.rndv:
                # A rendezvous sender would block forever on the lost
                # handshake; release it with the failure.
                msg.mark_failed(worker.clock.now, ProcFailedError(
                    f"rendezvous message #{seq} to rank {dst} lost on the "
                    f"wire (no reliability protocol)"))
            self._flush_held(ch, dst_worker)
            return

        if corrupted:
            # Corrupt private copies, never the sender's live buffers
            # (rendezvous chunks are views of user memory).
            pool = worker.memory.pool
            for ci, start, stop in (bounds[f] for f in sorted(corrupted)):
                chunk = msg.chunks[ci]
                if chunk.base is not None or not chunk.flags.owndata:
                    private = np.array(chunk, copy=True)
                    msg.chunks[ci] = private
                    # A pooled staging chunk just went out of the message;
                    # hand it back (no-op for rendezvous user-buffer views).
                    pool.release(chunk)
                    chunk = private
                if stop > start:
                    chunk[start] ^= 0xFF
            ch.trace.append({"event": "corrupt", "src": src, "dst": dst,
                             "seq": seq, "frags": sorted(corrupted)})

        if fates["delay"]:
            msg.wire_time += self.plan.delay_time
            stats.add(delays=1)
            ch.trace.append({"event": "delay", "src": src, "dst": dst,
                             "seq": seq, "t": self.plan.delay_time})

        dup = None
        if fates["duplicate"]:
            dup = self._clone(msg)
            stats.add(duplicates_delivered=1)
            ch.trace.append({"event": "duplicate", "src": src, "dst": dst,
                             "seq": seq})

        if fates["reorder"] and ch.held is None:
            stats.add(reordered=1)
            ch.trace.append({"event": "reorder-hold", "src": src,
                             "dst": dst, "seq": seq})
            ch.held = (msg, dst_worker, dup)
            return

        dst_worker.matcher.deposit(msg)
        if dup is not None:
            dst_worker.matcher.deposit(dup)
        self._flush_held(ch, dst_worker)

    # -- reliability protocol ----------------------------------------------

    def _transmit_reliable(self, worker, dst_worker, msg, model, ch, seq,
                           bounds, dropped, corrupted, fates) -> None:
        src, dst = worker.index, dst_worker.index
        stats = self.stats[src]
        rel = self.reliability
        p = model.params

        if corrupted:
            stats.add(crc_failures=len(corrupted))
        # The whole NACK/retransmit schedule is decided by the shared
        # transition table (pure, model-checked); this loop only *charges*
        # the resolved rounds into virtual time and the stats.
        rounds, remaining = resolve_retries(
            lambda frags, rnd: self.plan.frag_fates(src, dst, seq, frags,
                                                    rnd=rnd),
            rel.retry_limit, dropped, corrupted)
        extra_time = 0.0
        for r in rounds:
            nbytes = sum(bounds[f][2] - bounds[f][1] for f in r.frags)
            backoff = retry_backoff(rel.retry_timeout, rel.backoff, r.round)
            # One NACK round trip (receiver detects the gap / bad CRC at
            # its tag-match path and asks for the fragments again), the
            # sender's timeout+backoff wait, then the retransmission.
            extra_time += (backoff + p.latency + rel.ack_overhead
                           + model.retransmit_time(nbytes, len(r.frags)))
            # Re-staging the retransmitted fragments costs the sender.
            worker.clock.advance(nbytes / p.eager_copy_bandwidth)
            stats.add(retransmits=len(r.frags), retransmitted_bytes=nbytes,
                      ack_rounds=1, backoff_time=backoff)
            ch.trace.append({"event": "retransmit", "src": src, "dst": dst,
                             "seq": seq, "round": r.round,
                             "frags": list(r.frags), "bytes": nbytes})
            if r.corrupted_after:
                stats.add(crc_failures=len(r.corrupted_after))

        if remaining:
            stats.add(exhausted=1, lost_messages=1,
                      lost_fragments=len(remaining))
            err = ProcFailedError(
                f"message #{seq} from rank {src} to rank {dst}: "
                f"{len(remaining)} fragment(s) still unacknowledged after "
                f"{rel.retry_limit} retransmission round(s); retry budget "
                f"exhausted", failed_ranks=(dst,))
            ch.trace.append({"event": "exhausted", "src": src, "dst": dst,
                             "seq": seq, "frags": sorted(remaining)})
            san = self._sanitizer(worker)
            if san is not None:
                san.emit(
                    "RPD452",
                    f"message #{seq} of {msg.total_bytes} bytes from rank "
                    f"{src} to rank {dst} exhausted its reliability retry "
                    f"budget ({rel.retry_limit} round(s), "
                    f"{int(stats.snapshot()['retransmits'])} fragment "
                    f"retransmissions); the transfer was abandoned",
                    rank=src,
                    hint="raise retry_limit / retry_timeout, or reduce "
                         "the injected loss rate")
            msg.wire_time += extra_time
            msg.poisoned = err
            # Unblock a rendezvous sender immediately with the failure;
            # the envelope is still deposited so the receiver's wait
            # surfaces MPI_ERR_PROC_FAILED instead of hanging.
            msg.mark_failed(worker.clock.now, err)
            dst_worker.matcher.deposit(msg)
            self._flush_held(ch, dst_worker)
            return

        # Fully recovered.  The payload arrives intact and in order: the
        # receiver's sequencing layer dropped duplicates and healed the
        # reordering; only the clock remembers the trouble.
        msg.wire_time += extra_time
        if fates["delay"]:
            msg.wire_time += self.plan.delay_time
            stats.add(delays=1)
        if fates["duplicate"]:
            # The duplicate carries the seq the original just delivered, so
            # the sequencing layer suppresses it (shared decision with the
            # model — the seq-window off-by-one mutant breaks exactly this).
            if duplicate_suppressed(rel.enabled, seq, (seq,)):
                stats.add(duplicates_dropped=1)
                ch.trace.append({"event": "dup-dropped", "src": src,
                                 "dst": dst, "seq": seq})
            else:
                stats.add(duplicates_delivered=1)
                dst_worker.matcher.deposit(self._clone(msg))
        if fates["reorder"]:
            stats.add(reorders_healed=1)
            ch.trace.append({"event": "reorder-healed", "src": src,
                             "dst": dst, "seq": seq})
        dst_worker.matcher.deposit(msg)
        self._flush_held(ch, dst_worker)

    # -- plumbing ----------------------------------------------------------

    @staticmethod
    def _clone(msg: WireMessage) -> WireMessage:
        """An independent duplicate of a message (fresh events, same seq)."""
        from .wire import WireHeader
        hdr = msg.header
        dup_hdr = WireHeader(tag=hdr.tag, source=hdr.source,
                             total_bytes=hdr.total_bytes,
                             entry_lengths=hdr.entry_lengths,
                             packed_entries=hdr.packed_entries,
                             protocol=hdr.protocol,
                             signature=hdr.signature)
        dup_hdr.seq = hdr.seq
        dup_hdr.frag_crcs = hdr.frag_crcs
        dup = WireMessage(dup_hdr,
                          [np.array(c, copy=True) for c in msg.chunks],
                          send_ready=msg.send_ready,
                          wire_time=msg.wire_time, rndv=False,
                          recv_cost=msg.recv_cost)
        dup.duplicate_of = hdr.msg_id
        return dup

    def _flush_held(self, ch: _Channel, dst_worker) -> None:
        """Deposit a reorder-held message after its successor went out."""
        if ch.held is None:
            return
        held_msg, held_dst, held_dup = ch.held
        ch.held = None
        held_dst.matcher.deposit(held_msg)
        if held_dup is not None:
            held_dst.matcher.deposit(held_dup)

    def flush_rank(self, rank: int) -> None:
        """Deposit every message rank ``rank`` still holds for reordering.

        Called when the rank's function returns so a swap whose successor
        never came still delivers (nothing is silently lost by the
        reorder machinery itself).
        """
        with self._channels_lock:
            items = [(k, ch) for k, ch in sorted(self._channels.items())
                     if k[0] == rank]
        for (_, _dst), ch in items:
            if ch.held is not None:
                _, held_dst, _ = ch.held
                self._flush_held(ch, held_dst)

    def drop_rank(self, rank: int) -> None:
        """A crashed rank's held messages die with it."""
        with self._channels_lock:
            items = [ch for (s, _), ch in self._channels.items()
                     if s == rank]
        for ch in items:
            ch.held = None
