"""Transport backend interface: how bytes move between ranks.

The fabric's object model (workers, matchers, clocks, protocols, faults) is
transport-agnostic; everything that actually *moves a message* — depositing
it at the destination matcher, returning staging chunks to the sender's
pool, telling a blocked rendezvous sender the receiver arrived — funnels
through one :class:`Transport` instance per fabric.  Backends differ only
in how they cross the rank boundary:

* ``inproc``   — ranks are threads, the deposit is a method call (the
  seed semantics; every baseline is measured here).
* ``asyncio``  — ranks are threads but every message is serialized through
  a localhost socket pair, the portability proof for the RPD810/811
  envelope rules.
* ``shm``      — ranks are forked processes; payloads live in per-rank
  ``multiprocessing.shared_memory`` arenas and cross by (rank, offset)
  reference, so PackPlans execute directly into the shared segment.

The netsim cost model, wire envelope, transitions table and fault layer are
shared: every virtual-time number a backend reports is computed from the
same envelope fields, which is what the conformance matrix
(tests/transport/) asserts.

Threading contract: :meth:`Transport.submit` runs on the sending rank's
thread, :meth:`Transport.release_chunks` / :meth:`Transport.on_delivered` on
the receiving rank's thread.  A backend that adds its own demux threads must
keep them out of user callbacks (deposits into a :class:`TagMatcher` are the
only fabric mutation a foreign thread may perform — the matcher is locked
for exactly this reason).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

from ...errors import RankCrashError, TransportError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..context import Fabric, UcpConfig, Worker
    from ..wire import WireMessage


class TransportUnavailableError(TransportError):
    """The selected backend cannot run on this platform/configuration.

    Raised by :func:`repro.ucp.transport.create_transport` (unknown or
    platform-unsupported backend) and by
    :meth:`Transport.check_job_supported` (backend exists but cannot run
    this particular job, e.g. ``sanitize=True`` on ``shm``).  The message
    always names the backend and the remedy so CLI users see a clear error
    instead of a traceback from deep inside ``multiprocessing``.
    """


class Transport:
    """One job's message-movement backend.

    A transport instance is created per job (it may hold sockets, pipes or
    shared-memory segments) and attached to the fabric at construction.
    The default implementations encode the in-process semantics; remote
    backends override the seams marked below.
    """

    #: Registry name (``--transport`` value).
    name = "base"
    #: Whether fault plans / reliability work on this backend.
    supports_faults = True
    #: Whether the runtime sanitizer (cross-rank shared object) can attach.
    supports_sanitizer = True
    #: Whether ``SendRequest.cancel`` can retract an in-flight message.
    supports_cancel = True
    #: Whether ranks run in the driver's address space (threaded SPMD).
    #: When False, closure side effects inside rank functions are invisible
    #: to the caller and arbitrary live objects cannot ride messages.
    supports_shared_address_space = True
    #: Whether rendezvous envelopes alias the sender's live buffers
    #: (RPD810).  Remote backends must stage instead.
    rndv_aliases_buffers = True
    #: Whether the driver can hand workers recycled memory trackers (warm
    #: buffer pools) and observe the live fabric via ``fabric_hook`` —
    #: the job-service seams.  Only meaningful when ranks share the
    #: driver's address space; per-job forked processes cannot reuse the
    #: driver's pools.
    supports_warm_pools = False

    def attach(self, fabric: "Fabric") -> None:
        """Called once from ``Fabric.__init__`` after workers exist."""
        self.fabric = fabric

    # -- job gating --------------------------------------------------------

    def check_job_supported(self, config: "UcpConfig",
                            sanitize: bool = False) -> None:
        """Raise :class:`TransportUnavailableError` if this job can't run."""
        if sanitize and not self.supports_sanitizer:
            raise TransportUnavailableError(
                f"transport '{self.name}' does not support sanitize=True "
                f"(the sanitizer needs one shared address space); use "
                f"--transport inproc or asyncio")
        needs_faults = (config.faults is not None
                        or config.reliability is not None)
        if needs_faults and not self.supports_faults:
            raise TransportUnavailableError(
                f"transport '{self.name}' does not support fault injection; "
                f"use --transport inproc or asyncio")

    # -- send path (sending rank's thread) ---------------------------------

    def deposit_target(self, worker: "Worker", dst_index: int):
        """The object whose ``.matcher.deposit`` receives this send.

        Must expose ``.index`` and ``.matcher.deposit(msg)`` — the only two
        attributes the fault injector touches — so one fault layer drives
        every backend.  In-process backends return the destination
        :class:`Worker`; remote backends return a proxy that serializes
        the message onto their data plane.
        """
        return worker.fabric.worker(dst_index)

    def submit(self, worker: "Worker", dst_index: int, msg: "WireMessage",
               model) -> None:
        """Move one injected message toward its destination matcher."""
        target = self.deposit_target(worker, dst_index)
        fi = worker.fabric.injector
        if fi is None:
            target.matcher.deposit(msg)
        else:
            fi.transmit(worker, target, msg, model)

    def try_cancel_send(self, worker: "Worker", dst_index: int,
                        msg: "WireMessage") -> bool:
        """Retract an unmatched message (MPI_Cancel on a send).

        In-process backends reach into the destination matcher; remote
        backends cannot race the remote match and conservatively refuse
        (MPI allows cancel to simply not succeed).
        """
        if not self.supports_cancel:
            return False
        dst_worker = worker.fabric.worker(dst_index)
        if not dst_worker.matcher.retract(msg):
            return False
        pool = worker.memory.pool
        for chunk in msg.chunks:
            pool.release(chunk)
        msg.chunks = []
        msg.mark_failed(worker.clock.now, TransportError("send cancelled"))
        return True

    # -- receive path (receiving rank's thread) ----------------------------

    def release_chunks(self, recv_worker: "Worker",
                       msg: "WireMessage") -> None:
        """Return a delivered message's staging chunks to the sender's pool.

        In one address space the receiver releases directly into the
        sender's (locked) pool; across a process boundary this becomes the
        acknowledgement frame that lets the sender release its side.
        """
        pool = recv_worker.fabric.worker(msg.header.source).memory.pool
        for chunk in msg.chunks:
            pool.release(chunk)
        msg.chunks = []

    def on_delivered(self, recv_worker: "Worker",
                     msg: "WireMessage") -> None:
        """Delivery completed; remote backends acknowledge here."""

    def on_delivery_failed(self, recv_worker: "Worker", msg: "WireMessage",
                           exc: BaseException) -> None:
        """Delivery raised; remote backends NACK the sender here."""


class ThreadedTransport(Transport):
    """Shared SPMD driver for backends whose ranks are threads.

    ``inproc`` and ``asyncio`` both run one Python thread per rank over a
    single fabric; they differ only in the data plane, which the ``wire``/
    ``unwire`` hooks install.  The driver body is the seed semantics of
    ``repro.mpi.run`` verbatim: per-rank failure collection, fault-plan
    crash accounting, sanitizer lifecycle, deadlock timeout, faulted-job
    pool teardown.
    """

    def _reclaim_pools(self, fabric: "Fabric") -> None:
        """Release unclaimed messages' staging chunks, then force-reclaim.

        Only safe once every rank thread has joined (the pools are
        quiescent).
        """
        for w in fabric.workers:
            for msg in w.matcher.unmatched_messages():
                self.release_chunks(w, msg)
        for w in fabric.workers:
            w.memory.pool.reclaim()

    def wire(self, fabric: "Fabric") -> None:
        """Install the data plane before rank threads start."""

    def unwire(self, fabric: "Fabric") -> None:
        """Drain and dismantle the data plane after rank threads join."""

    def abandon(self, fabric: "Fabric") -> None:
        """Dismantle without draining (deadlock-timeout path)."""

    supports_warm_pools = True

    def run_job(self, fns: Sequence[Callable], nprocs: int,
                config: "UcpConfig", engine_config=None,
                timeout: float = 120.0, sanitize: bool = False,
                memory_trackers=None, fabric_hook=None):
        import threading

        from ...mpi.comm import Communicator
        from ...mpi.runtime import JobResult, RuntimeAbort
        from ..context import UcpContext

        fabric = UcpContext(config).create_fabric(
            nprocs, transport=self, memory_trackers=memory_trackers)
        injector = fabric.injector

        san = None
        if sanitize:
            from ...sanitize import JobSanitizer
            san = JobSanitizer(nprocs)
            for w in fabric.workers:
                w.sanitizer = san

        self.wire(fabric)
        if fabric_hook is not None:
            # Job-service seam: runs on the driver thread after the data
            # plane is wired and before any rank thread starts, so the
            # hook may install budgeted clocks or capture the injector's
            # failure detector (the mid-flight kill handle) race-free.
            fabric_hook(fabric)

        results: list[Any] = [None] * nprocs
        failures: dict[int, BaseException] = {}
        crashes: dict[int, BaseException] = {}
        failures_lock = threading.Lock()

        def worker_main(rank: int) -> None:
            comm = Communicator(fabric.worker(rank), nprocs, comm_id=0,
                                engine_config=engine_config)
            try:
                results[rank] = fns[rank](comm)
            except RankCrashError as exc:
                # A crash *scheduled by the fault plan* is part of the
                # experiment, not an application failure: record it, drop
                # the rank's in-flight state, let the survivors finish.
                with failures_lock:
                    crashes[rank] = exc
                if injector is not None:
                    injector.drop_rank(rank)
                if san is not None:
                    san.rank_failed(rank)
            except BaseException as exc:  # report, don't kill the interpreter
                with failures_lock:
                    failures[rank] = exc
                if injector is not None:
                    # Peers blocked on this rank must not hang on its corpse.
                    injector.detector.mark_dead(
                        rank, f"{type(exc).__name__}: {exc}")
                if san is not None:
                    san.rank_failed(rank)
            else:
                if injector is not None:
                    injector.flush_rank(rank)
                    injector.detector.mark_finished(rank)
                if san is not None:
                    san.finalize_rank(rank)

        threads = [threading.Thread(target=worker_main, args=(r,),
                                    name=f"mpi-rank-{r}", daemon=True)
                   for r in range(nprocs)]
        for t in threads:
            t.start()
        deadline_hit = False
        for t in threads:
            t.join(timeout=timeout)
            if t.is_alive():
                deadline_hit = True
        if deadline_hit:
            self.abandon(fabric)
            alive = [t.name for t in threads if t.is_alive()]
            # Every abandoned rank gets an explicit TimeoutError entry —
            # even when another rank already failed — so callers (the job
            # service's warm-pool hygiene, quota classification) can see
            # that live threads were left behind, not just that some rank
            # raised.
            for r, t in enumerate(threads):
                if t.is_alive():
                    failures.setdefault(
                        r, TimeoutError(
                            f"rank {r} still running after {timeout}s "
                            f"(deadlock?)"))
            abort = RuntimeAbort(failures or {
                -1: TimeoutError(f"ranks still running after {timeout}s "
                                 f"(deadlock?): {alive}")})
            if san is not None:
                abort.sanitizer_report = san.report(aborted=True,
                                                    failures=failures)
            raise abort
        self.unwire(fabric)
        if failures:
            abort = RuntimeAbort(failures)
            if san is not None:
                abort.sanitizer_report = san.report(aborted=True,
                                                    failures=failures)
            # Every rank thread joined, so the pools are quiescent: run
            # the same unclaimed-message/force-reclaim teardown as the
            # success path (after the sanitizer report, which must still
            # see the unclaimed messages).  A failed job must not leave
            # buffers outstanding — callers recycling warm trackers
            # (the job service) would otherwise see every aborted job as
            # a pool leak.
            self._reclaim_pools(fabric)
            raise abort

        report = None
        if san is not None:
            san.finalize_job(fabric)
            report = san.report()

        reliability_stats: list[dict] = []
        fault_trace: dict[str, list] = {}
        if injector is not None:
            # Faulted-job teardown: messages nobody will ever claim (sent
            # to a crashed rank, abandoned transfers) give their staging
            # chunks back, then any buffer still outstanding is
            # force-reclaimed so faults never masquerade as pool leaks.
            # Runs after the sanitizer sweep so RPD421 findings still see
            # the unclaimed messages.
            self._reclaim_pools(fabric)
            reliability_stats = [s.snapshot() for s in injector.stats]
            fault_trace = injector.traces()

        memory = []
        for i, w in enumerate(fabric.workers):
            snap = w.memory.snapshot()
            if injector is not None:
                snap["reliability"] = reliability_stats[i]
            memory.append(snap)

        return JobResult(
            results=results,
            fabric=fabric,
            clocks=[w.clock.now for w in fabric.workers],
            memory=memory,
            traces=[list(w.trace) for w in fabric.workers],
            sanitizer_report=report,
            reliability=reliability_stats,
            fault_trace=fault_trace,
            crashed=sorted(crashes),
            transport=self.name,
            msgs_delivered=[w.delivered_msgs for w in fabric.workers],
        )
