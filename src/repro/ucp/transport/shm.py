"""The shared-memory backend: one process per rank, payloads by reference.

This is the multi-core plane the ISSUE and the Adefemi 2025 single-node
shared-memory DDT study call for: each rank is a forked
``multiprocessing`` process (its packing finally runs on its own core,
outside the sending GIL), and each rank owns a
``multiprocessing.shared_memory`` *arena* that every peer maps.  The
rank's :class:`~repro.ucp.memory.BufferPool` is arena-backed
(:class:`ArenaBufferPool`), so PackPlans execute **directly into the
shared segment**: a non-contiguous send packs into an arena slab, the
message frame carries only ``(offset, nbytes)``, and the receiver
scatters straight out of the sender's segment into the user buffer — one
copy end to end, zero bounce-buffer hops.  This is the TEMPI-style
interposed-staging design with the stage *being* the wire.

Control plane: per-directed-pair ``multiprocessing.Pipe`` streams carry
the portable envelope and the ack frames; a demux thread per process
drains them.  Failure-detector state (crashes, finishes, ULFM aborts)
crosses as broadcast frames through :class:`BroadcastingDetector`, so
bounded-time hopeless-wait detection keeps working across processes.

Staging ownership: an arena slab referenced by an in-flight frame stays
checked out of the sender's pool until the receiver's acknowledgement
resolves the pending table — the slab cannot be reused while a peer may
still be reading it.
"""

from __future__ import annotations

import os
import pickle
from typing import Optional

import numpy as np

from ...errors import ProcFailedError, RankCrashError, TransportError
from ..memory import BufferPool
from . import envelope as env
from .base import Transport, TransportUnavailableError
from .remote import (BYE, BroadcastingDetector, PendingTable, RemoteDst,
                     RemoteTransportMixin)

#: Arena segment size per rank (``REPRO_SHM_ARENA_MB`` overrides).
DEFAULT_ARENA_MB = 64

#: Payload-reference tags inside ``msg`` frames.
REF_ARENA = "a"   # (REF_ARENA, offset, nbytes) into the sender's arena
REF_RAW = "r"     # (REF_RAW, bytes) — arena exhausted, bytes ride the pipe


def _shm_support() -> tuple[bool, str]:
    import multiprocessing as mp
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:
        return False, "multiprocessing.shared_memory is not available"
    if "fork" not in mp.get_all_start_methods():
        return False, ("the 'fork' start method is not available on this "
                       "platform (shm ranks inherit closures by forking)")
    return True, ""


class ArenaBufferPool(BufferPool):
    """A :class:`BufferPool` whose backing slabs live in a shared segment.

    Allocation is a bump pointer over the arena; the pool's size-classed
    free lists recycle slabs exactly as the private pool does, so steady
    state stops consuming arena space.  When the arena is exhausted the
    pool degrades to private ``np.empty`` slabs (those payloads then cross
    the control pipe as raw bytes instead of references — slower, never
    wrong).

    numpy collapses view ``base`` chains to the ultimate owner (the whole
    segment), which would defeat the base-chain root resolution the
    private pool uses; arena slabs are therefore resolved by their data
    address instead.
    """

    def __init__(self, shm, max_per_class: int = 64,
                 max_pooled_class: int = 1 << 26):
        super().__init__(max_per_class=max_per_class,
                         max_pooled_class=max_pooled_class)
        self._shm = shm
        self._segment = np.frombuffer(shm.buf, dtype=np.uint8)
        self._segment_addr = self._segment.__array_interface__["data"][0]
        self._segment_size = int(self._segment.shape[0])
        #: Bump cursor; touched only by the owning rank's thread (the
        #: acquire contract), so no extra lock.
        self._cursor = 0
        #: Slab start address -> slab view, for address-based release
        #: resolution; written under the pool lock, read under it too.
        self._slab_by_addr: dict[int, np.ndarray] = {}
        self.spills = 0

    def _new_root(self, size: int) -> np.ndarray:
        if self._cursor + size <= self._segment_size:
            start = self._cursor
            self._cursor += size
            slab = self._segment[start:start + size]
            with self._lock:
                self._slab_by_addr[self._segment_addr + start] = slab
            return slab
        self.spills += 1
        return np.empty(size, dtype=np.uint8)

    def _resolve_root(self, buf):
        if isinstance(buf, np.ndarray):
            addr = buf.__array_interface__["data"][0]
            with self._lock:
                slab = self._slab_by_addr.get(addr)
                if slab is None:
                    # A mid-slab view (its base chain collapses to the
                    # whole segment, not the slab): containment scan.
                    for start, s in self._slab_by_addr.items():
                        if start <= addr and \
                                addr + buf.nbytes <= start + s.nbytes:
                            slab = s
                            break
            if slab is not None and buf.nbytes <= slab.nbytes:
                return slab
        return super()._resolve_root(buf)

    def arena_offset(self, arr: np.ndarray) -> Optional[int]:
        """Offset of ``arr`` inside the arena, or None for foreign memory."""
        if not isinstance(arr, np.ndarray) or arr.dtype != np.uint8 \
                or not arr.flags["C_CONTIGUOUS"]:
            return None
        addr = arr.__array_interface__["data"][0]
        if self._segment_addr <= addr \
                and addr + arr.nbytes <= self._segment_addr \
                + self._segment_size:
            return addr - self._segment_addr
        return None

    def snapshot(self) -> dict[str, int]:
        snap = super().snapshot()
        snap["arena_spills"] = self.spills
        snap["arena_used"] = self._cursor
        snap["arena_size"] = self._segment_size
        return snap

    def detach(self) -> None:
        """Drop every view into the shared segment (terminal).

        ``SharedMemory.close`` refuses while exported pointers exist; a
        host that owns both the pool and the segment (tests; rank
        teardown that outlives the job) detaches before closing.  The
        pool is unusable afterwards.
        """
        with self._lock:
            self._free.clear()
            self._out.clear()
            self._slab_by_addr.clear()
        self._segment = np.empty(0, dtype=np.uint8)
        self._segment_size = 0
        self._cursor = 0


class _ShmChildTransport(RemoteTransportMixin, Transport):
    """The transport attached to one rank process's fabric."""

    name = "shm"
    supports_faults = True
    supports_sanitizer = False
    supports_cancel = False
    supports_shared_address_space = False
    rndv_aliases_buffers = False

    def __init__(self, rank: int, out_conns: dict, in_conns: dict, arenas):
        self._rank = rank
        self._out = out_conns
        self._in = in_conns
        self._pending = PendingTable()
        self._arena_views = {r: np.frombuffer(shm.buf, dtype=np.uint8)
                             for r, shm in arenas.items()}

    # -- plumbing ----------------------------------------------------------

    def pending_for(self, rank: int) -> PendingTable:
        return self._pending

    def send_frame(self, src_rank: int, dst_rank: int, frame) -> None:
        try:
            self._out[dst_rank].send(frame)
        except (OSError, ValueError) as exc:
            raise TransportError(
                f"shm transport channel {src_rank}->{dst_rank} closed: "
                f"{exc}") from exc

    def broadcast(self, frame) -> None:
        for dst in sorted(self._out):
            try:
                self._out[dst].send(frame)
            except (OSError, ValueError):
                pass  # peer already gone; its detector no longer matters

    def deposit_target(self, worker, dst_index: int):
        if dst_index == worker.index:
            return worker.fabric.worker(dst_index)
        transport = self

        def _deposit(msg):
            transport.encode_and_send(worker, dst_index, msg)

        return RemoteDst(dst_index, _deposit)

    # -- payloads ----------------------------------------------------------

    def encode_payload(self, worker, msg) -> list:
        """Turn chunks into arena references (staging foreign memory).

        Chunks already arena-resident — eager staging from
        ``copy_chunks``, packed rendezvous temps the engine acquired from
        the arena pool — cross as bare ``(offset, nbytes)`` references:
        the zero-copy path.  Foreign chunks (live user-buffer views on a
        rendezvous send, injector-corrupted private copies) are staged
        into an arena slab here; that wall-clock copy is the process
        boundary's "memory registration" and charges no virtual time.
        After encoding, ``msg.chunks`` holds exactly the slabs the
        acknowledgement must release.
        """
        pool = worker.memory.pool
        payload = []
        retained = []
        for chunk in msg.chunks:
            c = np.ascontiguousarray(chunk, dtype=np.uint8).reshape(-1)
            off = pool.arena_offset(c)
            if off is not None:
                payload.append((REF_ARENA, int(off), int(c.nbytes)))
                retained.append(chunk)
                continue
            if c.nbytes:
                block = pool.acquire(c.nbytes)
                boff = pool.arena_offset(block)
                if boff is not None:
                    block[:] = c
                    payload.append((REF_ARENA, int(boff), int(c.nbytes)))
                    retained.append(block)
                    continue
                pool.release(block)
            payload.append((REF_RAW, c.tobytes()))
        msg.chunks = retained
        return payload

    def materialize_payload(self, src_rank: int, doc, payload):
        """Map payload references to chunks (demux thread, no copy).

        Arena references become read views straight into the sender's
        segment — the receiver's delivery scatter is the only copy.
        Generic-protocol payloads are copied out immediately because user
        unpack callbacks may retain chunks past the acknowledgement (after
        which the sender is free to reuse the slab).
        """
        copy = doc["protocol"] == "generic"
        chunks = []
        for ref in payload:
            if ref[0] == REF_ARENA:
                _, off, nbytes = ref
                view = self._arena_views[src_rank][off:off + nbytes]
                chunks.append(np.array(view, copy=True) if copy else view)
            elif ref[0] == REF_RAW:
                arr = np.frombuffer(ref[1], dtype=np.uint8)
                chunks.append(np.array(arr, copy=True) if copy else arr)
            else:
                raise TransportError(f"unknown payload reference {ref[0]!r}")
        return chunks

    def sweep(self) -> None:
        self._pending.sweep()


def _child_main(rank: int, fn, nprocs: int, config, engine_config,
                out_conns: dict, in_conns: dict, arenas,
                result_conn) -> None:
    """One rank process: fabric + demux + the rank function + teardown."""
    import threading

    from ...mpi.comm import Communicator
    from ..context import UcpContext

    transport = _ShmChildTransport(rank, out_conns, in_conns, arenas)
    fabric = UcpContext(config).create_fabric(nprocs, transport=transport)
    worker = fabric.worker(rank)
    worker.memory.pool = ArenaBufferPool(arenas[rank])
    injector = fabric.injector
    if injector is not None:
        injector.detector = BroadcastingDetector(
            injector.detector, rank, transport.broadcast)

    demux_done = threading.Event()

    def demux() -> None:
        from multiprocessing.connection import wait as conn_wait
        live = dict(in_conns)
        try:
            while live:
                for conn in conn_wait(list(live.values()), timeout=0.1):
                    src = next(r for r, c in live.items() if c is conn)
                    try:
                        frame = conn.recv()
                    except (EOFError, OSError):
                        del live[src]
                        continue
                    if frame[0] == BYE:
                        del live[src]
                        continue
                    transport.deliver_frame(worker, src, frame)
        finally:
            demux_done.set()

    demux_thread = threading.Thread(target=demux, name=f"shm-demux-{rank}",
                                    daemon=True)
    demux_thread.start()

    result = None
    failure: BaseException | None = None
    crashed: BaseException | None = None
    comm = Communicator(worker, nprocs, comm_id=0,
                        engine_config=engine_config)
    try:
        result = fn(comm)
    except RankCrashError as exc:
        crashed = exc
        if injector is not None:
            injector.drop_rank(rank)
    except BaseException as exc:
        failure = exc
        if injector is not None:
            injector.detector.mark_dead(rank,
                                        f"{type(exc).__name__}: {exc}")
    else:
        if injector is not None:
            injector.flush_rank(rank)
            injector.detector.mark_finished(rank)

    transport.broadcast((BYE, rank))
    # Peers keep delivering (and acknowledging) until each sends its own
    # sentinel; the demux drains them all before the pool snapshot.
    demux_done.wait()
    demux_thread.join(timeout=5.0)

    # Teardown mirrors the threaded driver: unclaimed messages and
    # unacknowledged staging give their buffers back, then a faulted pool
    # force-reclaims so faults never masquerade as leaks.
    for msg in worker.matcher.unmatched_messages():
        transport.release_chunks(worker, msg)
    transport.sweep()
    reliability = {}
    fault_trace = {}
    if injector is not None:
        worker.memory.pool.reclaim()
        reliability = injector.stats[rank].snapshot()
        fault_trace = {ch: events for ch, events in
                       injector.traces().items()
                       if ch.startswith(f"{rank}->")}

    snap = worker.memory.snapshot()
    if injector is not None:
        snap["reliability"] = reliability
    row = {
        "rank": rank,
        "result": result,
        "failure": env.encode_error(failure),
        "abort_origin": (injector.detector.abort_origin
                         if injector is not None else None),
        "crashed": env.encode_error(crashed),
        "clock": worker.clock.now,
        "memory": snap,
        "trace": list(worker.trace),
        "delivered": worker.delivered_msgs,
        "reliability": reliability,
        "fault_trace": fault_trace,
    }
    try:
        result_conn.send(row)
    except Exception:
        row["result"] = None
        row["failure"] = env.encode_error(TransportError(
            f"rank {rank} result is not picklable across the shm "
            f"process boundary"))
        result_conn.send(row)
    result_conn.close()


def _arbitrate_abort(rows: dict, failures: dict) -> dict:
    """Deterministic ULFM abort attribution across rank processes.

    On the threaded backends the detector is one shared object: the first
    fatal error records the abort reason, and every other blocked rank
    observes it and fails with the victim form (``job aborted ...``).
    With one detector per process that ordering races — a rank can raise
    its own hopeless-wait error in the window between a peer's transition
    arriving and the peer's abort broadcast arriving.  Re-impose the
    shared-detector outcome at collection time: the lowest-ranked abort
    originator keeps its own error, every other hopeless-wait failure is
    rewritten to the victim form naming the winner's reason.
    """
    origins = {r: rows[r].get("abort_origin") for r in rows
               if rows[r].get("abort_origin")}
    if not origins:
        return failures
    winner = min(origins)
    reason = origins[winner]
    for r, err in list(failures.items()):
        if (r != winner and isinstance(err, ProcFailedError)
                and "job aborted" not in str(err)):
            failures[r] = ProcFailedError(
                f"job aborted (MPI_ERRORS_ARE_FATAL): {reason}",
                failed_ranks=err.failed_ranks)
    return failures


class ShmTransport(Transport):
    """Parent-side driver: fork rank processes, assemble the JobResult."""

    name = "shm"
    supports_faults = True
    supports_sanitizer = False
    supports_cancel = False
    supports_shared_address_space = False
    rndv_aliases_buffers = False

    @classmethod
    def available(cls) -> tuple[bool, str]:
        return _shm_support()

    def check_job_supported(self, config, sanitize: bool = False) -> None:
        ok, why = _shm_support()
        if not ok:
            raise TransportUnavailableError(
                f"transport 'shm' is unavailable on this platform: {why}; "
                f"use --transport inproc or asyncio")
        if sanitize:
            raise TransportUnavailableError(
                "transport 'shm' does not support sanitize=True (the "
                "sanitizer needs one shared address space); use "
                "--transport inproc or asyncio")

    @staticmethod
    def arena_bytes() -> int:
        mb = os.environ.get("REPRO_SHM_ARENA_MB")
        return int(float(mb) * (1 << 20)) if mb else \
            DEFAULT_ARENA_MB << 20

    def run_job(self, fns, nprocs: int, config, engine_config=None,
                timeout: float = 120.0, sanitize: bool = False):
        import multiprocessing as mp
        import time
        from multiprocessing import shared_memory

        from ...mpi.runtime import JobResult, RuntimeAbort
        from ..context import UcpContext

        self.check_job_supported(config, sanitize=sanitize)
        ctx = mp.get_context("fork")

        # Directed control channels i->j, a result pipe per rank, and one
        # arena per rank.
        recv_ends: dict[tuple[int, int], object] = {}
        send_ends: dict[tuple[int, int], object] = {}
        for i in range(nprocs):
            for j in range(nprocs):
                if i != j:
                    r, s = ctx.Pipe(duplex=False)
                    recv_ends[(i, j)] = r
                    send_ends[(i, j)] = s
        result_pipes = [ctx.Pipe(duplex=False) for _ in range(nprocs)]
        arenas = {}
        procs = []
        try:
            for r in range(nprocs):
                arenas[r] = shared_memory.SharedMemory(
                    create=True, size=self.arena_bytes())
            for r in range(nprocs):
                out_conns = {j: send_ends[(r, j)] for j in range(nprocs)
                             if j != r}
                in_conns = {i: recv_ends[(i, r)] for i in range(nprocs)
                            if i != r}
                procs.append(ctx.Process(
                    target=_child_main,
                    args=(r, fns[r], nprocs, config, engine_config,
                          out_conns, in_conns, arenas,
                          result_pipes[r][1]),
                    name=f"mpi-rank-{r}", daemon=True))
            for p in procs:
                p.start()

            rows: dict[int, dict] = {}
            deadline = time.monotonic() + timeout
            for r in range(nprocs):
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not result_pipes[r][0].poll(remaining):
                    if not procs[r].is_alive() \
                            and result_pipes[r][0].poll(0):
                        rows[r] = result_pipes[r][0].recv()
                        continue
                    alive = [p.name for p in procs if p.is_alive()]
                    raise RuntimeAbort({-1: TimeoutError(
                        f"ranks still running after {timeout}s "
                        f"(deadlock?): {alive}")})
                rows[r] = result_pipes[r][0].recv()
            for p in procs:
                p.join(timeout=10.0)
        finally:
            for p in procs:
                if p.is_alive():
                    p.terminate()
                    p.join(timeout=5.0)
            for conn_pair in result_pipes:
                conn_pair[0].close()
                conn_pair[1].close()
            for conn in list(recv_ends.values()) + list(send_ends.values()):
                conn.close()
            for shm in arenas.values():
                try:
                    shm.close()
                    shm.unlink()
                except Exception:
                    pass

        failures = {r: env.decode_error(rows[r]["failure"])
                    for r in rows if rows[r]["failure"] is not None}
        if failures:
            raise RuntimeAbort(_arbitrate_abort(rows, failures))
        crashes = sorted(r for r in rows
                         if rows[r]["crashed"] is not None)

        # Parent-side fabric mirror: clocks and traces are filled from the
        # per-rank rows so result introspection (max_clock, traces) works
        # like the threaded backends.
        fabric = UcpContext(config).create_fabric(nprocs, transport=self)
        for r in range(nprocs):
            fabric.worker(r).clock.merge(rows[r]["clock"])
            fabric.worker(r).trace = list(rows[r]["trace"])
        fault_trace: dict[str, list] = {}
        for r in range(nprocs):
            fault_trace.update(rows[r]["fault_trace"])

        return JobResult(
            results=[rows[r]["result"] for r in range(nprocs)],
            fabric=fabric,
            clocks=[rows[r]["clock"] for r in range(nprocs)],
            memory=[rows[r]["memory"] for r in range(nprocs)],
            traces=[list(rows[r]["trace"]) for r in range(nprocs)],
            sanitizer_report=None,
            reliability=[rows[r]["reliability"] for r in range(nprocs)]
            if fabric.injector is not None else [],
            fault_trace=fault_trace,
            crashed=crashes,
            transport=self.name,
            msgs_delivered=[rows[r].get("delivered", 0)
                            for r in range(nprocs)],
        )
