"""Portable wire-envelope codec: the RPD810/811 rules made executable.

The RPD8xx portability audit (PR 8) states two rules for anything riding a
:class:`~repro.ucp.wire.WireMessage` across a process boundary:

* **RPD810** — no by-reference payload: rendezvous chunks that alias the
  sender's live buffers must be *staged* (copied into transport-owned
  memory, or mapped by (rank, offset) reference into a shared segment)
  before the envelope leaves the sending process.
* **RPD811** — no non-serializable control plane: ``threading.Event``,
  exception objects and other live handles stay in a sender-local pending
  table keyed by ``msg_id``; only plain data crosses the wire.

This module is the shared implementation of those rules for the remote
backends (``shm``, ``asyncio``): an envelope *document* is a dict of
primitives (int/float/str/bytes/bool/None and tuples/lists/dicts thereof)
and nothing else.  :func:`assert_portable` enforces that invariant — the
conformance tests run every protocol's envelope through it, which is the
"actually pickles across a process boundary" check the in-process seed
never had.
"""

from __future__ import annotations

import pickle

import numpy as np

from ...errors import TransportError
from ..wire import WireHeader, WireMessage

#: WireHeader fields carried verbatim on the envelope document.
HEADER_FIELDS = ("tag", "source", "total_bytes", "entry_lengths",
                 "packed_entries", "protocol", "signature", "seq",
                 "frag_crcs", "msg_id")

#: WireMessage scalar fields carried verbatim (the virtual-time contract:
#: every cost number crosses the wire, so both sides compute identical
#: delivery times regardless of backend).
MESSAGE_FIELDS = ("send_ready", "wire_time", "rndv", "recv_cost",
                  "duplicate_of")

_PORTABLE_SCALARS = (int, float, str, bytes, bool, type(None))


def assert_portable(doc, path: str = "envelope") -> None:
    """Raise :class:`TransportError` unless ``doc`` is plain data.

    This is the runtime teeth of the RPD811 audit: a field that would drag
    a live object (event, lock, ndarray view, exception) onto the wire
    fails here, at the sending side, with the offending path named.
    """
    if isinstance(doc, _PORTABLE_SCALARS):
        return
    if isinstance(doc, (tuple, list)):
        for i, item in enumerate(doc):
            assert_portable(item, f"{path}[{i}]")
        return
    if isinstance(doc, dict):
        for key, value in doc.items():
            if not isinstance(key, (str, int)):
                raise TransportError(
                    f"non-portable envelope key at {path}: {key!r}")
            assert_portable(value, f"{path}[{key!r}]")
        return
    raise TransportError(
        f"non-portable envelope field at {path}: {type(doc).__name__} "
        f"(RPD811: only plain data may cross a process boundary)")


def encode_error(exc: BaseException | None) -> bytes | None:
    """Pickle an exception for an acknowledgement frame.

    Exceptions are user-defined and may be unpicklable; those degrade to a
    :class:`TransportError` carrying the repr, which is the same
    information a remote MPI peer would get.
    """
    if exc is None:
        return None
    try:
        return pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return pickle.dumps(
            TransportError(f"{type(exc).__name__}: {exc}"),
            protocol=pickle.HIGHEST_PROTOCOL)


def decode_error(blob: bytes | None) -> BaseException | None:
    if blob is None:
        return None
    return pickle.loads(blob)


def encode_envelope(msg: WireMessage) -> dict:
    """The portable document for one message (no payload, no handles)."""
    hdr = msg.header
    doc = {f: getattr(hdr, f) for f in HEADER_FIELDS}
    for f in MESSAGE_FIELDS:
        doc[f] = getattr(msg, f)
    # The poisoned marker (reliability retry budget exhausted) is the one
    # exception that legitimately rides the envelope: the receiver must
    # raise it at delivery.  It crosses as a pickle blob, not a live
    # object.
    doc["poisoned"] = encode_error(msg.poisoned)
    assert_portable(doc)
    return doc


def decode_envelope(doc: dict, chunks) -> WireMessage:
    """Rebuild a deliverable :class:`WireMessage` from a document.

    (The RPD810 exemption is deliberate and receiver-side only: ``chunks``
    are already *transport-materialized* — bytes decoded off a socket
    frame or mapped views of a peer's shared arena — so the by-reference
    rule this code exists to enforce has been satisfied upstream.)

    ``chunks`` are the backend-materialized payload entries (bytes decoded
    from a socket frame, or views into a peer's shared-memory arena).  The
    receiver-side message gets fresh local handles (completion event);
    completion flows back to the sender as an acknowledgement frame, never
    as a shared object.
    """
    hdr = WireHeader(
        tag=doc["tag"], source=doc["source"],
        total_bytes=doc["total_bytes"],
        entry_lengths=tuple(doc["entry_lengths"]),
        packed_entries=doc["packed_entries"],
        protocol=doc["protocol"],
        signature=_decode_signature(doc["signature"]),
        msg_id=doc["msg_id"])
    hdr.seq = doc["seq"]
    hdr.frag_crcs = tuple(doc["frag_crcs"])
    msg = WireMessage(hdr, chunks,  # noqa: RPD810
                      send_ready=doc["send_ready"],
                      wire_time=doc["wire_time"],
                      rndv=doc["rndv"],
                      recv_cost=doc["recv_cost"])
    msg.duplicate_of = doc["duplicate_of"]
    msg.poisoned = decode_error(doc["poisoned"])
    #: Rank whose pending table holds the sender-side original; the
    #: receive path acknowledges toward it (None marks a local message).
    msg.remote_origin = doc["source"]
    return msg


def _decode_signature(sig):
    """Signatures are tuples of (code, count) pairs; lists arrive from
    JSON-ish decoders and are normalized back."""
    if sig is None:
        return None
    return tuple(tuple(pair) for pair in sig)


def chunk_bytes(chunks) -> list[bytes]:
    """Serialize payload chunks to raw bytes (the socket data plane)."""
    return [np.ascontiguousarray(c, dtype=np.uint8).tobytes()
            for c in chunks]


def bytes_chunks(payloads, copy_protocols=("generic",), protocol="eager"
                 ) -> list[np.ndarray]:
    """Materialize received payload bytes as delivery chunks.

    Contig/iov deliveries only *read* chunks (they scatter into the user
    buffer), so a read-only zero-copy view over the frame bytes suffices.
    Generic-protocol deliveries hand chunks to user unpack callbacks that
    may retain them past delivery; those get private copies.
    """
    out = []
    copy = protocol in copy_protocols
    for blob in payloads:
        arr = np.frombuffer(blob, dtype=np.uint8)
        out.append(np.array(arr, copy=True) if copy else arr)
    return out
