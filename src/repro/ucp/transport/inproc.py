"""The in-process (threads + shared objects) backend — the seed semantics.

Every baseline in BENCH_perf.json and every tier-1 assertion was measured
on this backend, so it inherits the base-class behavior unchanged: a
deposit is a method call into the destination's locked matcher, rendezvous
envelopes alias the sender's live buffers (the in-process stand-in for
RDMA get), and the receiver releases eager staging directly into the
sender's pool.
"""

from __future__ import annotations

from .base import ThreadedTransport


class InprocTransport(ThreadedTransport):
    """Ranks as threads of one process over directly shared objects."""

    name = "inproc"
    supports_faults = True
    supports_sanitizer = True
    supports_cancel = True
    rndv_aliases_buffers = True

    @classmethod
    def available(cls) -> tuple[bool, str]:
        return True, ""
