"""The asyncio/socket backend: every message crosses a real socket.

Ranks are still threads (so clocks, the sanitizer and the fault layer work
exactly as inproc), but the data plane is a mesh of ``socket.socketpair()``
streams — one per directed rank pair — drained by one asyncio event loop
on a dedicated I/O thread.  Nothing object-shaped crosses: envelopes go
through the portable codec, payloads as raw bytes, completion as ack
frames resolved against per-rank pending tables.

This is the portability *proof* for the RPD810/811 envelope rules: if any
send path still aliased live buffers or carried a live handle on the
envelope, this backend would fail to frame it.  It is not a performance
backend (every payload is serialized twice per hop); ``shm`` is the fast
process-boundary plane.

Single-writer discipline: the frames of channel ``i -> j`` are written
only by rank ``i``'s thread (sends at injection, acks at delivery — both
run on the owning rank's thread), so writes need no lock.  The I/O thread
only reads, and its only fabric mutations are matcher deposits and
pending-table resolutions, both locked.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading

from ...errors import TransportError
from . import envelope as env
from .base import ThreadedTransport
from .remote import DEAD, DONE, PendingTable, RemoteDst, RemoteTransportMixin

_LEN = struct.Struct(">Q")


class _OrderedDetector:
    """Channel-ordered view of the shared failure detector.

    On the socket plane a rank's last frames can still be in flight when
    its thread reaches ``mark_finished``/``mark_dead``.  Applying the
    transition to the (shared) detector immediately would let a peer's
    blocking wait observe "rank finished" *before* that rank's final
    message is deposited — a state unreachable on inproc, where deposits
    are synchronous.  Instead the transition rides the rank's outgoing
    channels as DONE/DEAD frames (FIFO behind its data frames) and the
    I/O thread applies it once *every* channel has drained past it, so no
    observer can be ahead of its own channel.  ``abort_job`` stays
    immediate: it poisons blocking waits unconditionally, exactly as the
    inproc shared detector does.
    """

    def __init__(self, inner, transport: "AsyncioTransport", nprocs: int):
        self._inner = inner
        self._transport = transport
        self._nprocs = nprocs
        self._fanout = nprocs - 1
        self._count_lock = threading.Lock()
        self._counts: dict[tuple, int] = {}

    def _ride_channels(self, rank: int, frame, apply) -> None:
        if self._fanout == 0:
            apply()
            return
        try:
            for j in range(self._nprocs):
                if j != rank:
                    self._transport.send_frame(rank, j, frame)
        except TransportError:
            # Data plane already dismantled (abandon path): apply
            # directly so surviving waits still terminate.
            apply()

    # -- local transitions (rank's own thread) -----------------------------

    def mark_dead(self, rank: int, reason: str = "process failed") -> None:
        self._ride_channels(rank, (DEAD, rank, reason),
                            lambda: self._inner.mark_dead(rank, reason))

    def mark_finished(self, rank: int) -> None:
        self._ride_channels(rank, (DONE, rank),
                            lambda: self._inner.mark_finished(rank))

    def abort_job(self, reason: str) -> None:
        self._inner.abort_job(reason)

    # -- remote applications (I/O thread) ----------------------------------

    def _drained(self, key) -> bool:
        with self._count_lock:
            n = self._counts.get(key, 0) + 1
            self._counts[key] = n
            return n >= self._fanout

    def apply_remote_dead(self, rank: int, reason: str) -> None:
        if self._drained(("dead", rank)):
            self._inner.mark_dead(rank, reason)

    def apply_remote_finished(self, rank: int) -> None:
        if self._drained(("done", rank)):
            self._inner.mark_finished(rank)

    def apply_remote_abort(self, reason: str) -> None:
        self._inner.abort_job(reason)

    # -- queries delegate --------------------------------------------------

    def __getattr__(self, name):
        return getattr(self._inner, name)


class _Channel:
    """Receive state of one directed socket stream (I/O thread only)."""

    __slots__ = ("src", "dst", "sock", "buf", "open")

    def __init__(self, src: int, dst: int, sock: socket.socket):
        self.src = src
        self.dst = dst
        self.sock = sock
        self.buf = bytearray()
        self.open = True


class AsyncioTransport(RemoteTransportMixin, ThreadedTransport):
    """Rank threads exchanging framed messages over localhost sockets."""

    name = "asyncio"
    supports_faults = True
    supports_sanitizer = True
    supports_cancel = False
    rndv_aliases_buffers = False

    def __init__(self):
        #: Guards the cross-thread state below (the I/O thread closes
        #: channels and records errors while the driver thread tears
        #: down).
        self._lock = threading.Lock()
        self._writers: dict[tuple[int, int], socket.socket] = {}
        self._channels: dict[int, _Channel] = {}
        self._pending: list[PendingTable] = []
        self._loop = None
        self._io_thread: threading.Thread | None = None
        self._drained = threading.Event()
        self._open_channels = 0
        self._io_error: BaseException | None = None

    @classmethod
    def available(cls) -> tuple[bool, str]:
        return True, ""

    # -- plane lifecycle ---------------------------------------------------

    def wire(self, fabric) -> None:
        import asyncio

        n = len(fabric.workers)
        self._pending = [PendingTable() for _ in range(n)]
        with self._lock:
            self._loop = asyncio.new_event_loop()
        readers = []
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                wsock, rsock = socket.socketpair()
                wsock.setblocking(True)
                rsock.setblocking(False)
                self._writers[(i, j)] = wsock
                readers.append(_Channel(i, j, rsock))
        with self._lock:
            self._open_channels = len(readers)
        self._drained = threading.Event()
        if not readers:
            self._drained.set()
        for ch in readers:
            self._channels[ch.sock.fileno()] = ch
            self._loop.add_reader(ch.sock.fileno(), self._on_readable,
                                  fabric, ch)
        if fabric.injector is not None:
            fabric.injector.detector = _OrderedDetector(
                fabric.injector.detector, self, n)
        self._io_thread = threading.Thread(
            target=self._loop.run_forever, name="ucp-asyncio-io",
            daemon=True)
        self._io_thread.start()

    def unwire(self, fabric) -> None:
        # Ranks have joined, so every frame is already written; half-close
        # the write ends and let the reader callbacks drain to EOF — a
        # deterministic flush of in-flight acks before pool snapshots.
        for sock in self._writers.values():
            try:
                sock.shutdown(socket.SHUT_WR)
            except OSError:
                pass
        if not self._drained.wait(timeout=30.0):
            self._teardown()
            raise TransportError(
                "asyncio transport failed to drain in-flight frames")
        self._teardown()
        with self._lock:
            io_error = self._io_error
        if io_error is not None:
            raise TransportError(
                f"asyncio transport I/O failure: {io_error}") from io_error
        for table in self._pending:
            table.sweep()

    def abandon(self, fabric) -> None:
        """Timeout path: dismantle without draining (ranks still alive)."""
        self._teardown()

    def _record_io_error(self, exc: BaseException) -> None:
        with self._lock:
            if self._io_error is None:
                self._io_error = exc

    def _teardown(self) -> None:
        with self._lock:
            loop = self._loop
            self._loop = None
        if loop is None:
            return

        def _stop() -> None:
            for ch in self._channels.values():
                if ch.open:
                    try:
                        loop.remove_reader(ch.sock.fileno())
                    except Exception:
                        pass
                    ch.open = False
            loop.stop()

        loop.call_soon_threadsafe(_stop)
        if self._io_thread is not None:
            self._io_thread.join(timeout=10.0)
        if not loop.is_running():
            loop.close()
        for ch in self._channels.values():
            ch.sock.close()
        for sock in self._writers.values():
            sock.close()

    # -- sender side -------------------------------------------------------

    def deposit_target(self, worker, dst_index: int):
        if dst_index == worker.index:
            # Self-sends never leave the rank; keep in-process semantics.
            return worker.fabric.worker(dst_index)
        transport = self

        def _deposit(msg):
            transport.encode_and_send(worker, dst_index, msg)

        return RemoteDst(dst_index, _deposit)

    def pending_for(self, rank: int) -> PendingTable:
        return self._pending[rank]

    def send_frame(self, src_rank: int, dst_rank: int, frame) -> None:
        blob = pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
        sock = self._writers[(src_rank, dst_rank)]
        try:
            sock.sendall(_LEN.pack(len(blob)) + blob)
        except OSError as exc:
            raise TransportError(
                f"asyncio transport channel {src_rank}->{dst_rank} "
                f"closed: {exc}") from exc

    def encode_payload(self, worker, msg) -> list[bytes]:
        return env.chunk_bytes(msg.chunks)

    def materialize_payload(self, src_rank: int, doc, payload):
        return env.bytes_chunks(payload, protocol=doc["protocol"])

    # -- I/O thread --------------------------------------------------------

    def _on_readable(self, fabric, ch: _Channel) -> None:
        try:
            data = ch.sock.recv(1 << 20)
        except BlockingIOError:
            return
        except OSError as exc:
            self._record_io_error(exc)
            self._close_channel(ch)
            return
        if not data:
            self._close_channel(ch)
            return
        ch.buf.extend(data)
        try:
            for frame in self._drain_frames(ch):
                self.deliver_frame(fabric.worker(ch.dst), ch.src, frame)
        except BaseException as exc:  # record; the drain must not die
            self._record_io_error(exc)

    @staticmethod
    def _drain_frames(ch: _Channel):
        frames = []
        buf = ch.buf
        while True:
            if len(buf) < _LEN.size:
                break
            (need,) = _LEN.unpack_from(buf, 0)
            if len(buf) < _LEN.size + need:
                break
            frames.append(pickle.loads(bytes(buf[_LEN.size:_LEN.size + need])))
            del buf[:_LEN.size + need]
        return frames

    def _close_channel(self, ch: _Channel) -> None:
        if not ch.open:
            return
        ch.open = False
        with self._lock:
            loop = self._loop
        if loop is not None:
            try:
                loop.remove_reader(ch.sock.fileno())
            except Exception:
                pass
        with self._lock:
            self._open_channels -= 1
            drained = self._open_channels <= 0
        if drained:
            self._drained.set()
