"""Shared machinery for process/socket-boundary backends.

The in-process fabric completes a send by sharing objects: the receiver
sets the sender's ``threading.Event`` and releases staging into the
sender's pool directly.  Across a boundary both become *frames*:

``msg`` frame
    The portable envelope document plus the payload (raw bytes on the
    socket plane, ``(rank, offset, nbytes)`` arena references on the
    shared-memory plane).

``ack`` frame
    Receiver → sender after delivery (or delivery failure): carries the
    ``msg_id``, the receiver's completion virtual time, and an optional
    pickled error.  The sender resolves it against its
    :class:`PendingTable` — releasing staging chunks and completing the
    original message — which is exactly the "control-plane fields move
    off the envelope into a local request table keyed by msg_id" move
    DESIGN.md's transport-portability section called for.

Per-channel frame order is FIFO (a pipe or a stream socket), which the
fault layer's reorder/duplicate machinery already assumes; faults are
resolved sender-side *before* encoding, so a corrupted or delayed message
crosses the boundary exactly as the inproc receiver would have seen it.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from ...errors import ProcFailedError, TransportError
from ..wire import WireMessage
from . import envelope as env

#: Frame kind tags (first element of every frame tuple).
MSG = "msg"
ACK = "ack"
BYE = "bye"      # rank finished; drain sentinel for demux loops
DEAD = "dead"    # failure-detector broadcast: rank died (reason follows)
DONE = "done"    # failure-detector broadcast: rank finished cleanly
ABORT = "abort"  # failure-detector broadcast: MPI_ERRORS_ARE_FATAL fired


class PendingTable:
    """Sender-side table of in-flight messages keyed by ``msg_id``.

    Owns the RPD811 control plane that used to ride the envelope: the
    completion event, the error slot and the staging chunks all stay here;
    the acknowledgement frame carries only the key and plain data.

    Thread contract: ``register`` runs on the sending rank's thread,
    ``resolve``/``sweep`` on the demux thread — hence the lock.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._entries: dict[int, tuple[WireMessage, object]] = {}

    def register(self, msg: WireMessage, pool) -> None:
        with self._lock:
            self._entries[msg.header.msg_id] = (msg, pool)

    def resolve(self, msg_id: int, completion_time: float,
                error: BaseException | None) -> bool:
        """Apply one acknowledgement; False for unknown ids (late acks
        after a sweep, acks for a cancelled message)."""
        with self._lock:
            entry = self._entries.pop(msg_id, None)
        if entry is None:
            return False
        msg, pool = entry
        for chunk in msg.chunks:
            pool.release(chunk)
        msg.chunks = []
        if msg.completed.is_set():
            # Already resolved sender-side (poisoned/exhausted transfers
            # are failed at injection); the ack only releases staging.
            return True
        if error is not None:
            msg.mark_failed(completion_time, error)
        else:
            msg.mark_complete(completion_time)
        return True

    def sweep(self) -> int:
        """Release every still-pending entry (job teardown).

        Messages nobody acknowledged — unmatched at job end, sent to a
        crashed rank — give their staging back so remote jobs show the
        same no-leak pool accounting as inproc teardown.
        """
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for msg, pool in entries:
            for chunk in msg.chunks:
                pool.release(chunk)
            msg.chunks = []
        return len(entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class _ProxyMatcher:
    """Duck-typed ``matcher`` attribute of :class:`RemoteDst`."""

    __slots__ = ("_deposit",)

    def __init__(self, deposit: Callable[[WireMessage], None]):
        self._deposit = deposit

    def deposit(self, msg: WireMessage) -> None:
        self._deposit(msg)


class RemoteDst:
    """Destination proxy handed to the fault injector.

    Exposes exactly the two attributes :meth:`FaultInjector.transmit`
    touches (``index`` and ``matcher.deposit``), so the whole fault layer —
    drop/corrupt/duplicate/reorder/delay, the reliability retransmission
    schedule, CRC stamping — runs unchanged on the sender's thread and the
    already-faulted message is what gets encoded onto the wire.
    """

    __slots__ = ("index", "matcher")

    def __init__(self, index: int, deposit: Callable[[WireMessage], None]):
        self.index = index
        self.matcher = _ProxyMatcher(deposit)


class RemoteTransportMixin:
    """The receive/ack halves shared by the ``shm`` and ``asyncio`` planes.

    Concrete backends provide:

    * ``send_frame(src_rank, dst_rank, frame_tuple)`` — FIFO per channel;
    * ``encode_payload(worker, msg)`` / ``materialize_payload(...)`` —
      how chunks cross (raw bytes vs arena references);
    * a pending table per local rank via ``pending_for(rank)``.
    """

    rndv_aliases_buffers = False
    supports_cancel = False

    # -- sender side -------------------------------------------------------

    def encode_and_send(self, worker, dst_index: int,
                        msg: WireMessage) -> None:
        """Stage, register and emit one message frame (sender thread)."""
        doc = env.encode_envelope(msg)
        payload = self.encode_payload(worker, msg)
        self.pending_for(worker.index).register(msg, worker.memory.pool)
        self.send_frame(worker.index, dst_index, (MSG, doc, payload))

    # -- receiver side -----------------------------------------------------

    def deliver_frame(self, recv_worker, src_rank: int, frame) -> None:
        """Dispatch one inbound frame (demux thread).

        ``msg`` frames become a deposit into the local matcher (the one
        fabric mutation a foreign thread may perform); ``ack`` frames
        resolve the local pending table.  Detector broadcasts update the
        local failure detector so ULFM waits terminate across processes.
        """
        kind = frame[0]
        if kind == MSG:
            _, doc, payload = frame
            chunks = self.materialize_payload(src_rank, doc, payload)
            msg = env.decode_envelope(doc, chunks)
            recv_worker.matcher.deposit(msg)
        elif kind == ACK:
            _, msg_id, completion_time, err_blob = frame
            self.pending_for(recv_worker.index).resolve(
                msg_id, completion_time, env.decode_error(err_blob))
        elif kind == DEAD:
            detector = self._local_detector(recv_worker)
            if detector is not None:
                detector.apply_remote_dead(frame[1], frame[2])
        elif kind == DONE:
            detector = self._local_detector(recv_worker)
            if detector is not None:
                detector.apply_remote_finished(frame[1])
        elif kind == ABORT:
            detector = self._local_detector(recv_worker)
            if detector is not None:
                detector.apply_remote_abort(frame[1])
        elif kind != BYE:
            raise TransportError(f"unknown transport frame kind {kind!r}")

    @staticmethod
    def _local_detector(worker):
        injector = worker.fabric.injector
        return None if injector is None else injector.detector

    # -- receive-path hooks (called from Worker.deliver) -------------------

    def release_chunks(self, recv_worker, msg: WireMessage) -> None:
        if getattr(msg, "remote_origin", None) is None:
            # Self-send: the message never crossed the boundary and keeps
            # in-process pool semantics.
            super().release_chunks(recv_worker, msg)
            return
        # Receiver-side chunks are transport-materialized (frame bytes or
        # arena views); dropping the references is the whole release.  The
        # sender's staging comes back via the acknowledgement frame.
        msg.chunks = []

    def on_delivered(self, recv_worker, msg: WireMessage) -> None:
        origin = getattr(msg, "remote_origin", None)
        if origin is None:
            return
        msg.chunks = []
        self.send_frame(recv_worker.index, origin,
                        (ACK, msg.header.msg_id, msg.completion_time, None))

    def on_delivery_failed(self, recv_worker, msg: WireMessage,
                           exc: BaseException) -> None:
        origin = getattr(msg, "remote_origin", None)
        if origin is None:
            return
        msg.chunks = []
        self.send_frame(recv_worker.index, origin,
                        (ACK, msg.header.msg_id, msg.completion_time,
                         env.encode_error(exc)))


class BroadcastingDetector:
    """A :class:`FailureDetector` wrapper that mirrors state to peers.

    On the ``shm`` backend each rank process has its own detector; the
    local transitions (dead / finished / abort) are broadcast as frames so
    every process's detector converges and ULFM blocking-wait semantics
    hold across the boundary.  ``apply_remote_*`` entries apply a peer's
    broadcast without re-broadcasting (no echo storms).
    """

    def __init__(self, inner, local_rank: int,
                 broadcast: Callable[[tuple], None]):
        self._inner = inner
        self._local_rank = local_rank
        self._broadcast = broadcast
        #: Reason of an abort this rank originated (its own fatal handler
        #: fired before any peer's abort arrived), else None.  The driver
        #: uses it to attribute the job abort deterministically.
        self.abort_origin: Optional[str] = None

    # -- local transitions (broadcast) -------------------------------------

    def mark_dead(self, rank: int, reason: str = "process failed") -> None:
        self._inner.mark_dead(rank, reason)
        self._broadcast((DEAD, rank, reason))

    def mark_finished(self, rank: int) -> None:
        self._inner.mark_finished(rank)
        self._broadcast((DONE, rank))

    def abort_job(self, reason: str) -> None:
        if self._inner.abort_job(reason):
            self.abort_origin = reason
        self._broadcast((ABORT, reason))

    # -- remote applications (no re-broadcast) -----------------------------

    def apply_remote_dead(self, rank: int, reason: str) -> None:
        self._inner.mark_dead(rank, reason)

    def apply_remote_finished(self, rank: int) -> None:
        self._inner.mark_finished(rank)

    def apply_remote_abort(self, reason: str) -> None:
        self._inner.abort_job(reason)

    # -- hopeless-wait ordering --------------------------------------------

    #: Per-rank grace before raising a hopeless-wait error (seconds).
    HOPELESS_GRACE = 0.025
    #: Upper bound on the grace so high ranks don't stall error exits.
    HOPELESS_GRACE_CAP = 0.5

    def check_hopeless(self, targets, what: str = "wait") -> None:
        """Rank-staggered hopeless detection.

        On the threaded backends one shared detector serializes fatal
        errors: the first blocked rank to poll raises its own error, its
        fatal handler records the abort, and every later poller observes
        the abort and raises the victim form instead.  With one detector
        per process that serialization disappears — a rank can raise its
        own error in the window between a peer's transition frame and
        that peer's abort frame.  Re-impose the order: when a wait turns
        hopeless and no abort is recorded yet, wait ``rank * GRACE``
        before re-checking, so the lowest blocked rank raises (and
        broadcasts its abort) first and higher ranks see the victim form.
        """
        try:
            self._inner.check_hopeless(targets, what)
            return
        except ProcFailedError:
            if self._local_rank == 0 or self._inner.aborted is not None:
                raise
        time.sleep(min(self._local_rank * self.HOPELESS_GRACE,
                       self.HOPELESS_GRACE_CAP))
        self._inner.check_hopeless(targets, what)

    # -- queries delegate --------------------------------------------------

    def __getattr__(self, name):
        return getattr(self._inner, name)
