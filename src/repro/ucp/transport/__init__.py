"""Swappable transport backends for the simulated fabric.

Selection precedence: an explicit ``transport=`` argument (or
``--transport`` CLI flag) wins, then the ``REPRO_TRANSPORT`` environment
variable, then the default ``inproc``.

================  =========================================================
``inproc``        Threads + shared objects (the seed semantics; every
                  baseline and every capability: faults, sanitizer,
                  cancel).
``shm``           One forked process per rank + shared-memory arenas;
                  PackPlans execute directly into the shared segment
                  (multi-core packing, zero bounce-buffer copy).  Faults
                  yes, sanitizer no.
``asyncio``       Threads + localhost socket pairs; every envelope is
                  framed through the portable codec (the RPD810/811
                  portability proof).  Full capability, not a perf plane.
================  =========================================================
"""

from __future__ import annotations

import os

from .base import Transport, TransportUnavailableError
from .envelope import assert_portable, decode_envelope, encode_envelope
from .inproc import InprocTransport
from .remote import PendingTable, RemoteDst

__all__ = [
    "Transport", "TransportUnavailableError",
    "InprocTransport", "PendingTable", "RemoteDst",
    "assert_portable", "encode_envelope", "decode_envelope",
    "TRANSPORT_NAMES", "DEFAULT_TRANSPORT", "ENV_VAR",
    "available_transports", "create_transport", "resolve_transport_name",
]

#: Environment variable consulted when no explicit transport is given.
ENV_VAR = "REPRO_TRANSPORT"

DEFAULT_TRANSPORT = "inproc"

#: All registered backend names, in documentation order.
TRANSPORT_NAMES = ("inproc", "shm", "asyncio")


def _backend_class(name: str):
    if name == "inproc":
        return InprocTransport
    if name == "shm":
        from .shm import ShmTransport
        return ShmTransport
    if name == "asyncio":
        from .asyncio_ import AsyncioTransport
        return AsyncioTransport
    raise TransportUnavailableError(
        f"unknown transport {name!r}; available: "
        f"{', '.join(TRANSPORT_NAMES)}")


def available_transports() -> dict[str, str]:
    """Map of backend name -> "" (available) or the unavailability reason."""
    out = {}
    for name in TRANSPORT_NAMES:
        ok, why = _backend_class(name).available()
        out[name] = "" if ok else why
    return out


def resolve_transport_name(name: str | None = None) -> str:
    """Apply the selection precedence and validate the name."""
    if name is None:
        name = os.environ.get(ENV_VAR) or DEFAULT_TRANSPORT
    name = name.strip().lower()
    if name not in TRANSPORT_NAMES:
        raise TransportUnavailableError(
            f"unknown transport {name!r}; available: "
            f"{', '.join(TRANSPORT_NAMES)} "
            f"(set via transport=/--transport or ${ENV_VAR})")
    return name


def create_transport(name: str | None = None) -> Transport:
    """Instantiate one job's transport backend (validating availability)."""
    name = resolve_transport_name(name)
    cls = _backend_class(name)
    ok, why = cls.available()
    if not ok:
        raise TransportUnavailableError(
            f"transport '{name}' is unavailable on this platform: {why}; "
            f"available: "
            f"{', '.join(n for n, w in available_transports().items() if not w)}")
    return cls()
