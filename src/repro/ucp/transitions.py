"""The wire protocol's decision table as enumerable pure functions.

Every *decision* the protocol machinery makes — eager vs rendezvous
selection, CRC acceptance, duplicate suppression, retry budgeting, failure
propagation — lives here as a pure function of explicit arguments.  The live
implementation (:mod:`repro.ucp.protocols`, :mod:`repro.ucp.faults`,
:mod:`repro.ucp.netsim`, :mod:`repro.ucp.context`) calls these functions on
its imperative state; the protocol model checker
(:mod:`repro.analyze.protomodel`) calls the *same* functions on its abstract
state.  Because both sides share one transition table, the model checker's
RPD7xx verdicts certify the decisions the fabric actually executes, and the
conformance harness (``repro-analyze proto --conformance``) can replay a
model trace against the live fabric and flag any divergence (RPD720).

Nothing in this module may touch clocks, locks, numpy buffers, pools or any
other runtime state: a function here must be a total, deterministic map from
arguments to a value, so the model checker can enumerate it.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The protocol action alphabet the model checker explores.  Kept here (not
#: in the analyzer) so a new transport backend can assert it implements every
#: action before the conformance gate even runs.
PROTOCOL_ACTIONS = (
    "post_recv",     # receiver posts a matching receive
    "send",          # sender stages + injects a message
    "deliver",       # receiver matches and moves payload
    "ack",           # receiver acknowledges clean fragments (rndv complete)
    "nack",          # receiver rejects dropped/corrupt fragments
    "timeout",       # sender's retransmission timer fires
    "retransmit",    # sender re-stages NACKed fragments
    "cancel",        # either side withdraws an unmatched operation
    "finish",        # a rank returns from its main()
    # fault actions (only enabled when the scenario injects them)
    "drop",          # a fragment vanishes on the wire
    "corrupt",       # payload bytes flip on the wire
    "duplicate",     # the message arrives twice
    "reorder",       # the message swaps places with its channel successor
    "crash",         # a rank disappears
    "detect",        # a blocked waiter observes a peer failure (ULFM)
)


# ---------------------------------------------------------------------------
# protocol selection (repro.ucp.protocols / repro.ucp.netsim)
# ---------------------------------------------------------------------------

def message_is_eager(nbytes: int, eager_limit: int) -> bool:
    """Whether a contiguous message takes the eager path.

    The boundary is **inclusive**: a message of exactly ``eager_limit``
    bytes is still eager (UCX's ``UCX_RNDV_THRESH`` convention — rendezvous
    starts strictly *above* the threshold).  This predicate is the single
    source of truth; :func:`repro.ucp.protocols.plan_send`,
    :meth:`repro.ucp.netsim.CostModel.contig_time` and the protocol model
    all route through it so the three can never disagree at the cutoff.
    """
    return nbytes <= eager_limit


def select_protocol(kind: str, nbytes: int, eager_limit: int,
                    force_rndv: bool = False) -> str:
    """Protocol for a datatype kind: ``eager``/``rndv``/``iov``/``generic``.

    ``force_rndv`` models synchronous-send (MPI_Ssend) semantics on the
    contiguous path.
    """
    if kind == "contig":
        if force_rndv or not message_is_eager(nbytes, eager_limit):
            return "rndv"
        return "eager"
    if kind == "iov":
        return "iov"
    if kind == "generic":
        return "generic"
    raise ValueError(f"unknown datatype kind {kind!r}")


def protocol_is_rndv(protocol: str) -> bool:
    """Whether a sender's ``wait()`` blocks until the receive runs."""
    return protocol in ("rndv", "iov")


def protocol_copies_eagerly(protocol: str) -> bool:
    """Whether injection stages payload copies (pool-owned chunks)."""
    return protocol in ("eager", "generic")


# ---------------------------------------------------------------------------
# integrity / sequencing (repro.ucp.faults / repro.ucp.context)
# ---------------------------------------------------------------------------

def crc_reject(expected: tuple, actual: tuple) -> tuple[int, ...]:
    """Fragment indices whose CRC words disagree with the envelope.

    Rejection happens *before* the ACK decision: a fragment listed here is
    NACKed (reliability on) or counted as corrupted-delivered (reliability
    off) — never acknowledged.  The ``ack-before-crc`` protocol mutant
    inverts exactly this ordering.
    """
    return tuple(i for i, (a, e) in enumerate(zip(actual, expected))
                 if a != e)


def duplicate_suppressed(reliability_enabled: bool, seq: int,
                         delivered_seqs) -> bool:
    """Whether the sequencing layer drops a duplicate of message ``seq``.

    With reliability on, a message whose sequence number was already
    delivered on this channel is a duplicate and must be suppressed
    (**inclusive** membership — the ``seq-window off-by-one`` mutant turns
    this into a strict comparison and re-delivers the boundary message).
    Without the reliability protocol there is no sequencing layer and the
    duplicate reaches matching.
    """
    if not reliability_enabled:
        return False
    return seq in delivered_seqs


# ---------------------------------------------------------------------------
# retry budgeting (repro.ucp.faults)
# ---------------------------------------------------------------------------

def retry_exhausted(rounds_used: int, retry_limit: int) -> bool:
    """Whether the retransmission budget is spent after ``rounds_used``.

    This is the protocol's progress bound: every retransmission loop must
    consult it, so a transfer either completes or fails within
    ``retry_limit`` rounds.  The ``retry-without-budget`` mutant ignores it
    and diverges (RPD710).
    """
    return rounds_used >= retry_limit


@dataclass(frozen=True)
class RetryRound:
    """One resolved retransmission round."""

    round: int                     # 1-based round number
    frags: tuple[int, ...]         # fragments retransmitted this round
    dropped_after: tuple[int, ...]    # of those, lost again in flight
    corrupted_after: tuple[int, ...]  # of those, corrupted again in flight


def resolve_retries(fates, retry_limit: int, dropped, corrupted
                    ) -> tuple[tuple[RetryRound, ...], frozenset]:
    """Resolve the whole ACK/NACK/retransmit history of one message.

    ``fates(frags, round)`` returns ``(dropped, corrupted)`` for a
    retransmission attempt — for the live fabric that is
    :meth:`repro.ucp.faults.FaultPlan.frag_fates` curried over the channel,
    for the model it is the scenario's scheduled fault choices.  Returns the
    per-round schedule plus the fragments still unacknowledged when the
    budget ran out (empty = the transfer recovered).

    The function is pure: charging virtual time, mutating stats and
    depositing the message stay with the caller.
    """
    rounds: list[RetryRound] = []
    remaining = set(dropped) | set(corrupted)
    rnd = 0
    while remaining and not retry_exhausted(rnd, retry_limit):
        rnd += 1
        retrans = tuple(sorted(remaining))
        re_dropped, re_corrupted = fates(retrans, rnd)
        rounds.append(RetryRound(
            round=rnd, frags=retrans,
            dropped_after=tuple(sorted(re_dropped)),
            corrupted_after=tuple(sorted(re_corrupted))))
        remaining = set(re_dropped) | set(re_corrupted)
    return tuple(rounds), frozenset(remaining)


def retry_backoff(retry_timeout: float, backoff: float, rnd: int) -> float:
    """Sender wait before the ``rnd``-th (1-based) retransmission."""
    return retry_timeout * backoff ** (rnd - 1)


# ---------------------------------------------------------------------------
# failure propagation (ULFM semantics)
# ---------------------------------------------------------------------------

def exhaustion_reports_failure() -> bool:
    """A spent retry budget must surface ``MPI_ERR_PROC_FAILED`` at *both*
    endpoints (sender raise + poisoned envelope for the receiver).  Always
    True in the shipped protocol; the ``missing-proc-failed`` mutant answers
    False and completes the operation silently (RPD704/RPD701)."""
    return True


def crash_observed_reports_failure() -> bool:
    """A blocking wait whose peer crashed must raise, never succeed.

    The live implementation enforces this through
    :meth:`repro.ucp.faults.FailureDetector.check_hopeless`.
    """
    return True


def loss_is_reported_without_reliability() -> bool:
    """On an unreliable fabric a dropped message must still be *reported*
    (RPD450 sanitizer finding + rendezvous sender release) even though it
    cannot be recovered.  Silent loss is the RPD701 condition."""
    return True


def cancel_releases_staging_once() -> bool:
    """A successful cancel returns staging buffers to the pool exactly once;
    a second cancel of the same request must be a no-op (no double
    recycle).  Asserted by the model's RPD703 buffer-ownership check."""
    return True
