"""NAS MG face exchanges (DDTBench ``nas_mg_x/y/z``-style).

Multigrid halo exchange on a ``[nz][ny][nx]`` float64 grid (C-order):

* **MG_x** — the ``i = const`` face: ``nz*ny`` runs of a *single* 8-byte
  element (the worst case for scatter/gather — the paper's example of many
  small regions losing to packing),
* **MG_y** — the ``j = const`` face: ``nz`` contiguous rows of ``nx``
  elements (few, large regions — the case where regions win),
* **MG_z** — the ``k = const`` face: one fully contiguous plane.
"""

from __future__ import annotations

import numpy as np

from .base import RunLayout, Workload, WorkloadMeta


class _NasMgBase(Workload):
    element_dtype = np.dtype("<f8")

    def __init__(self, nx: int = 34, ny: int = 34, nz: int = 34, face: int = 1):
        self.nx, self.ny, self.nz = nx, ny, nz
        self.face = face
        self.nbytes = nx * ny * nz * 8
        super().__init__()

    def make_send_buffer(self) -> np.ndarray:
        buf = (np.arange(self.nbytes // 8, dtype="<f8") % 977) * 0.5
        return buf.view(np.uint8)

    def _grid(self, buf: np.ndarray) -> np.ndarray:
        return buf.view("<f8").reshape(self.nz, self.ny, self.nx)


class NasMgX(_NasMgBase):
    """x-face: one element per (k, j) row — nz*ny tiny runs."""

    meta = WorkloadMeta(
        name="NAS_MG_x",
        mpi_datatypes="strided vector",
        loop_structure="2 nested loops (non-contiguous)",
        memory_regions=True,
    )

    def build_layout(self) -> RunLayout:
        runs = []
        for k in range(self.nz):
            for j in range(self.ny):
                off = ((k * self.ny + j) * self.nx + self.face) * 8
                runs.append((off, 8))
        return RunLayout(runs, self.nbytes)

    def manual_pack(self, buf: np.ndarray) -> np.ndarray:
        g = self._grid(buf)
        out = np.empty(self.nz * self.ny, dtype="<f8")
        pos = 0
        for k in range(self.nz):
            out[pos:pos + self.ny] = g[k, :, self.face]
            pos += self.ny
        return out.view(np.uint8)

    def manual_unpack(self, packed: np.ndarray, buf: np.ndarray) -> None:
        g = self._grid(buf)
        src = packed.view("<f8")
        pos = 0
        for k in range(self.nz):
            g[k, :, self.face] = src[pos:pos + self.ny]
            pos += self.ny


class NasMgY(_NasMgBase):
    """y-face: one contiguous nx-row per k — nz large runs."""

    meta = WorkloadMeta(
        name="NAS_MG_y",
        mpi_datatypes="strided vector",
        loop_structure="2 nested loops (non-contiguous)",
        memory_regions=True,
    )

    def build_layout(self) -> RunLayout:
        runs = []
        for k in range(self.nz):
            off = ((k * self.ny + self.face) * self.nx) * 8
            runs.append((off, self.nx * 8))
        return RunLayout(runs, self.nbytes)

    def manual_pack(self, buf: np.ndarray) -> np.ndarray:
        g = self._grid(buf)
        out = np.empty(self.nz * self.nx, dtype="<f8")
        pos = 0
        for k in range(self.nz):
            out[pos:pos + self.nx] = g[k, self.face, :]
            pos += self.nx
        return out.view(np.uint8)

    def manual_unpack(self, packed: np.ndarray, buf: np.ndarray) -> None:
        g = self._grid(buf)
        src = packed.view("<f8")
        pos = 0
        for k in range(self.nz):
            g[k, self.face, :] = src[pos:pos + self.nx]
            pos += self.nx


class NasMgZ(_NasMgBase):
    """z-face: a single contiguous plane."""

    meta = WorkloadMeta(
        name="NAS_MG_z",
        mpi_datatypes="contiguous",
        loop_structure="2 nested loops",
        memory_regions=True,
    )

    def build_layout(self) -> RunLayout:
        plane = self.ny * self.nx * 8
        return RunLayout([(self.face * plane, plane)], self.nbytes)

    def manual_pack(self, buf: np.ndarray) -> np.ndarray:
        g = self._grid(buf)
        return g[self.face].reshape(-1).copy().view(np.uint8)

    def manual_unpack(self, packed: np.ndarray, buf: np.ndarray) -> None:
        g = self._grid(buf)
        g[self.face].reshape(-1)[:] = packed.view("<f8")
