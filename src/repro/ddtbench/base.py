"""DDTBench workload machinery.

DDTBench (Schneider, Gerstenberger, Hoefler — EuroMPI'12) extracts the
communication data-access patterns of real applications.  Each workload here
describes the bytes it exchanges as a :class:`RunLayout` — an ordered list of
(offset, length) *runs* into a backing buffer — plus the explicit nested-loop
manual packer that mirrors the original Fortran/C pack code.  From the layout
we derive every transfer method of the paper's Fig. 10:

* ``reference``      — a contiguous pingpong of the same packed size,
* ``ompi-datatype``  — the derived datatype (hindexed over the runs) sent
  directly through the datatype engine,
* ``ompi-pack``      — MPI_Pack with that datatype, then a contiguous send,
* ``manual-pack``    — the workload's own nested-loop packer, contiguous send,
* ``custom-pack``    — the paper's API, pack callbacks only,
* ``custom-region``  — the paper's API, one memory region per contiguous run
  (only for workloads where Table I marks regions as sensible),
* ``custom-coro``    — pack callbacks implemented as a suspendable generator
  (the paper's C++-coroutine experiment, working here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..core import (BYTE, CustomDatatype, DerivedDatatype, Region,
                    coroutine_pack_callbacks, from_numpy_dtype, hindexed,
                    resized, type_create_custom)


@dataclass(frozen=True)
class WorkloadMeta:
    """One row of the paper's Table I."""

    name: str
    mpi_datatypes: str
    loop_structure: str
    memory_regions: bool


class RunLayout:
    """Ordered contiguous byte runs into one backing buffer."""

    def __init__(self, runs: Iterable[tuple[int, int]], buffer_bytes: int):
        arr = np.asarray(list(runs), dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        self.runs = arr
        self.buffer_bytes = buffer_bytes
        if arr.size:
            if (arr[:, 1] <= 0).any():
                raise ValueError("run lengths must be positive")
            if (arr[:, 0] < 0).any() or (arr[:, 0] + arr[:, 1] > buffer_bytes).any():
                raise ValueError("run outside backing buffer")

    @property
    def total_bytes(self) -> int:
        return int(self.runs[:, 1].sum()) if self.runs.size else 0

    @property
    def run_count(self) -> int:
        return self.runs.shape[0]

    def merged(self) -> "RunLayout":
        """Coalesce runs adjacent in both order and memory (region extraction)."""
        merged: list[list[int]] = []
        for off, ln in self.runs:
            if merged and merged[-1][0] + merged[-1][1] == off:
                merged[-1][1] += int(ln)
            else:
                merged.append([int(off), int(ln)])
        return RunLayout(merged, self.buffer_bytes)

    def gather(self, buf: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Vectorized pack of all runs (groups runs of equal length)."""
        total = self.total_bytes
        if out is None:
            out = np.empty(total, dtype=np.uint8)
        src = buf.view(np.uint8).reshape(-1)
        if not self.runs.size:
            return out
        pos_starts = np.zeros(self.run_count, dtype=np.int64)
        np.cumsum(self.runs[:-1, 1], out=pos_starts[1:])
        for ln in np.unique(self.runs[:, 1]):
            sel = self.runs[:, 1] == ln
            offs = self.runs[sel, 0]
            outs = pos_starts[sel]
            idx = offs[:, None] + np.arange(ln)[None, :]
            oidx = outs[:, None] + np.arange(ln)[None, :]
            out[oidx.ravel()] = src[idx.ravel()]
        return out

    def scatter(self, packed: np.ndarray, buf: np.ndarray) -> None:
        """Vectorized unpack of all runs."""
        dst = buf.view(np.uint8).reshape(-1)
        packed = packed.view(np.uint8).reshape(-1)
        if not self.runs.size:
            return
        pos_starts = np.zeros(self.run_count, dtype=np.int64)
        np.cumsum(self.runs[:-1, 1], out=pos_starts[1:])
        for ln in np.unique(self.runs[:, 1]):
            sel = self.runs[:, 1] == ln
            offs = self.runs[sel, 0]
            ins = pos_starts[sel]
            idx = offs[:, None] + np.arange(ln)[None, :]
            iidx = ins[:, None] + np.arange(ln)[None, :]
            dst[idx.ravel()] = packed[iidx.ravel()]
        # noqa: vectorized over equal-length run groups


class Workload:
    """Base class: a backing buffer + a run layout + Table I metadata."""

    meta: WorkloadMeta

    #: Element dtype of the backing buffer (for the derived datatype base).
    element_dtype = np.dtype("<f8")

    def __init__(self):
        self.layout = self.build_layout()

    # -- to implement per workload -----------------------------------------

    def build_layout(self) -> RunLayout:
        raise NotImplementedError

    def make_send_buffer(self) -> np.ndarray:
        """Backing buffer with deterministic contents."""
        raise NotImplementedError

    def manual_pack(self, buf: np.ndarray) -> np.ndarray:
        """The workload's own nested-loop packer (mirrors the C code)."""
        raise NotImplementedError

    def manual_unpack(self, packed: np.ndarray, buf: np.ndarray) -> None:
        raise NotImplementedError

    # -- generic machinery ----------------------------------------------------

    @property
    def name(self) -> str:
        return self.meta.name

    @property
    def packed_bytes(self) -> int:
        return self.layout.total_bytes

    def make_recv_buffer(self) -> np.ndarray:
        buf = self.make_send_buffer()
        flat = buf.view(np.uint8).reshape(-1)
        flat[:] = 0
        return buf

    def exchanged_equal(self, a: np.ndarray, b: np.ndarray) -> bool:
        """Compare only the exchanged runs of two backing buffers."""
        return bool(np.array_equal(self.layout.gather(a), self.layout.gather(b)))

    def derived_datatype(self) -> DerivedDatatype:
        """hindexed over the runs, in element units of ``element_dtype``."""
        esize = self.element_dtype.itemsize
        runs = self.layout.runs
        if (runs[:, 0] % esize).any() or (runs[:, 1] % esize).any():
            base = BYTE
            blens = runs[:, 1].tolist()
            displs = runs[:, 0].tolist()
        else:
            base = from_numpy_dtype(self.element_dtype)
            blens = (runs[:, 1] // esize).tolist()
            displs = runs[:, 0].tolist()
        t = hindexed(blens, displs, base)
        return resized(t, 0, self.layout.buffer_bytes).commit()

    # -- custom datatypes ---------------------------------------------------

    def custom_pack_datatype(self) -> CustomDatatype:
        """Pack-only custom type over the backing buffer."""
        layout = self.layout

        class _State:
            __slots__ = ("packed", "filled")

            def __init__(self):
                self.packed: np.ndarray | None = None
                self.filled = 0

        def state_fn(context, buf, count):
            return _State()

        def state_free_fn(state):
            state.packed = None

        def query_fn(state, buf, count):
            return layout.total_bytes

        def pack_fn(state, buf, count, offset, dst):
            if state.packed is None:
                state.packed = layout.gather(buf)
            step = min(dst.shape[0], state.packed.shape[0] - offset)
            dst[:step] = state.packed[offset:offset + step]
            return int(step)

        def unpack_fn(state, buf, count, offset, src):
            if state.packed is None:
                state.packed = np.zeros(layout.total_bytes, dtype=np.uint8)
            state.packed[offset:offset + src.shape[0]] = src
            state.filled += src.shape[0]
            if state.filled >= layout.total_bytes:
                layout.scatter(state.packed, buf)

        return type_create_custom(query_fn=query_fn, pack_fn=pack_fn,
                                  unpack_fn=unpack_fn, state_fn=state_fn,
                                  state_free_fn=state_free_fn,
                                  name=f"custom-pack:{self.name}")

    def custom_region_datatype(self) -> CustomDatatype:
        """Region-based custom type: one region per merged contiguous run."""
        if not self.meta.memory_regions:
            raise ValueError(
                f"{self.name}: Table I marks memory regions as impracticable")
        merged = self.layout.merged()

        def query_fn(state, buf, count):
            return 0

        def region_count_fn(state, buf, count):
            return merged.run_count

        def region_fn(state, buf, count, region_count):
            flat = buf.view(np.uint8).reshape(-1)
            return [Region(flat[off:off + ln]) for off, ln in merged.runs]

        return type_create_custom(query_fn=query_fn,
                                  region_count_fn=region_count_fn,
                                  region_fn=region_fn,
                                  name=f"custom-region:{self.name}")

    def custom_coroutine_datatype(self) -> CustomDatatype:
        """Pack via a suspendable generator walking the run list.

        Unlike :meth:`custom_pack_datatype` (which materializes the full
        packed stream on first call — the paper's "full packing" fallback),
        the generator packs runs directly into each fragment and suspends
        mid-walk, which is exactly what Listing 9 does with C++ coroutines.
        """
        layout = self.layout

        def pack_gen(context, buf, count):
            src = buf.view(np.uint8).reshape(-1)
            dst = yield
            pos = 0  # position within current fragment
            written_any = False
            for off, ln in layout.runs:
                off = int(off)
                remaining = int(ln)
                while remaining:
                    if pos == len(dst):
                        dst = yield pos
                        pos = 0
                    step = min(remaining, len(dst) - pos)
                    dst[pos:pos + step] = src[off:off + step]
                    off += step
                    pos += step
                    remaining -= step
                    written_any = True
            if written_any or layout.total_bytes == 0:
                yield pos

        def unpack_gen(context, buf, count):
            dst = buf.view(np.uint8).reshape(-1)
            src = yield
            pos = 0
            for off, ln in layout.runs:
                off = int(off)
                remaining = int(ln)
                while remaining:
                    if pos == len(src):
                        src = yield pos
                        pos = 0
                    step = min(remaining, len(src) - pos)
                    dst[off:off + step] = src[pos:pos + step]
                    off += step
                    pos += step
                    remaining -= step
            yield pos

        def query_fn(state, buf, count):
            return layout.total_bytes

        state_fn, state_free_fn, pack_fn, unpack_fn = coroutine_pack_callbacks(
            pack_gen, unpack_gen)
        return type_create_custom(query_fn=query_fn, pack_fn=pack_fn,
                                  unpack_fn=unpack_fn, state_fn=state_fn,
                                  state_free_fn=state_free_fn, inorder=True,
                                  name=f"custom-coro:{self.name}")
