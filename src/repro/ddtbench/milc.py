"""MILC su3 z-face exchange (DDTBench ``milc_su3_zdown``-style).

Lattice QCD: a 4-D lattice of su3 vectors (3 complex64 = 24 B) laid out
C-order as ``[t][z][y][x][3]``.  The z-down exchange sends two z-planes for
every t — the manual packer is a *5-deep loop nest* (t, z, y, x, color) with
non-unit stride at the t level.  Because two adjacent z-planes are contiguous
in memory for each t, region extraction produces only ``T`` large regions —
one of the workloads where the paper found memory regions to *win*.
"""

from __future__ import annotations

import numpy as np

from .base import RunLayout, Workload, WorkloadMeta

SU3_BYTES = 3 * 8  # 3 complex64


class Milc(Workload):
    """Send z-planes ``[t][0:zsend][:][:][:]`` of a [T][Z][Y][X][3] lattice."""

    meta = WorkloadMeta(
        name="MILC",
        mpi_datatypes="strided vector",
        loop_structure="5 nested loops (non-unit stride)",
        memory_regions=True,
    )
    element_dtype = np.dtype("<c8")

    def __init__(self, t: int = 8, z: int = 8, y: int = 16, x: int = 16,
                 zsend: int = 2):
        if zsend > z:
            raise ValueError(f"zsend={zsend} exceeds z={z}")
        self.T, self.Z, self.Y, self.X = t, z, y, x
        self.zsend = zsend
        self.nbytes = t * z * y * x * SU3_BYTES
        super().__init__()

    @property
    def plane_bytes(self) -> int:
        return self.Y * self.X * SU3_BYTES

    def build_layout(self) -> RunLayout:
        zstride = self.Z * self.plane_bytes  # bytes per t slice
        runs = [(ti * zstride, self.zsend * self.plane_bytes)
                for ti in range(self.T)]
        return RunLayout(runs, self.nbytes)

    def make_send_buffer(self) -> np.ndarray:
        buf = np.zeros(self.nbytes // 8, dtype="<c8")
        buf[:] = np.arange(buf.shape[0]) * (1 + 0.5j)
        return buf.view(np.uint8)

    def manual_pack(self, buf: np.ndarray) -> np.ndarray:
        """The 5-deep loop nest: t, z, y then the contiguous (x, color) tail."""
        lat = buf.view("<c8").reshape(self.T, self.Z, self.Y, self.X, 3)
        out = np.empty(self.layout.total_bytes // 8, dtype="<c8")
        row = self.X * 3
        pos = 0
        for t in range(self.T):
            for z in range(self.zsend):
                for y in range(self.Y):
                    out[pos:pos + row] = lat[t, z, y].reshape(row)
                    pos += row
        return out.view(np.uint8)

    def manual_unpack(self, packed: np.ndarray, buf: np.ndarray) -> None:
        lat = buf.view("<c8").reshape(self.T, self.Z, self.Y, self.X, 3)
        src = packed.view("<c8")
        row = self.X * 3
        pos = 0
        for t in range(self.T):
            for z in range(self.zsend):
                for y in range(self.Y):
                    lat[t, z, y].reshape(row)[:] = src[pos:pos + row]
                    pos += row
