"""FFT2 transpose exchange (DDTBench ``fft2``-style).

A 2-D FFT distributes an ``N x N`` complex matrix by rows and transposes it
between the two 1-D FFT phases: each rank sends a block of *columns*, which
in row-major storage is one short run per row — a strided vector with many
small runs (the worst shape for scatter/gather after NAS_MG_x, and a classic
MPI_Type_vector use).
"""

from __future__ import annotations

import numpy as np

from .base import RunLayout, Workload, WorkloadMeta

COMPLEX_BYTES = 8  # complex64


class Fft2(Workload):
    """Column-block send of an [n][n] complex64 matrix."""

    meta = WorkloadMeta(
        name="FFT2",
        mpi_datatypes="strided vector",
        loop_structure="2 nested loops (non-unit stride)",
        memory_regions=True,
    )
    element_dtype = np.dtype("<c8")

    def __init__(self, n: int = 64, block: int = 8, col0: int = 8):
        if col0 + block > n:
            raise ValueError(f"column block [{col0}, {col0 + block}) outside n={n}")
        self.n = n
        self.block = block
        self.col0 = col0
        self.nbytes = n * n * COMPLEX_BYTES
        super().__init__()

    def build_layout(self) -> RunLayout:
        runs = []
        row_bytes = self.n * COMPLEX_BYTES
        for r in range(self.n):
            off = r * row_bytes + self.col0 * COMPLEX_BYTES
            runs.append((off, self.block * COMPLEX_BYTES))
        return RunLayout(runs, self.nbytes)

    def make_send_buffer(self) -> np.ndarray:
        m = np.arange(self.n * self.n, dtype="<c8")
        m += 1j * (np.arange(self.n * self.n) % 97)
        return m.view(np.uint8)

    def manual_pack(self, buf: np.ndarray) -> np.ndarray:
        m = buf.view("<c8").reshape(self.n, self.n)
        out = np.empty(self.n * self.block, dtype="<c8")
        pos = 0
        for r in range(self.n):  # 2 nested loops: rows x column run
            out[pos:pos + self.block] = m[r, self.col0:self.col0 + self.block]
            pos += self.block
        return out.view(np.uint8)

    def manual_unpack(self, packed: np.ndarray, buf: np.ndarray) -> None:
        m = buf.view("<c8").reshape(self.n, self.n)
        src = packed.view("<c8")
        pos = 0
        for r in range(self.n):
            m[r, self.col0:self.col0 + self.block] = src[pos:pos + self.block]
            pos += self.block
