"""Workload registry and factory functions."""

from __future__ import annotations

from typing import Callable

from .base import Workload
from .fft import Fft2
from .lammps import Lammps, LammpsFull
from .milc import Milc
from .nas_lu import NasLuX, NasLuY
from .nas_mg import NasMgX, NasMgY, NasMgZ
from .specfem import Specfem3dOc
from .wrf import WrfXVec, WrfYVec

#: Construction order follows the paper's Table I.
WORKLOADS: dict[str, Callable[[], Workload]] = {
    "LAMMPS": Lammps,
    "LAMMPS_full": LammpsFull,
    "MILC": Milc,
    "NAS_LU_x": NasLuX,
    "NAS_LU_y": NasLuY,
    "NAS_MG_x": NasMgX,
    "NAS_MG_y": NasMgY,
    "NAS_MG_z": NasMgZ,
    "WRF_x_vec": WrfXVec,
    "WRF_y_vec": WrfYVec,
    "FFT2": Fft2,
    "SPECFEM3D_oc": Specfem3dOc,
}


def make_workload(name: str, **kwargs) -> Workload:
    """Instantiate a workload by Table I name (kwargs override problem sizes)."""
    try:
        cls = WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown DDTBench workload {name!r}; "
                       f"choose from {sorted(WORKLOADS)}") from None
    return cls(**kwargs)


def all_workloads(**kwargs) -> list[Workload]:
    """Instantiate every registered workload with default problem sizes."""
    return [cls() for cls in WORKLOADS.values()]
