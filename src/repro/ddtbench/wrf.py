"""WRF halo exchanges (DDTBench ``wrf_x_vec`` / ``wrf_y_vec``-style).

Weather modelling: several 3-D float32 fields exchange a halo together, so
the MPI datatype is a *struct of strided vectors* and the manual packer is a
3-5 deep loop nest (field, k, j, i).  The combination of many fields and
small per-field runs is why Table I marks memory regions as impracticable
for the WRF benchmarks.
"""

from __future__ import annotations

import numpy as np

from .base import RunLayout, Workload, WorkloadMeta


class _WrfBase(Workload):
    element_dtype = np.dtype("<f4")

    def __init__(self, ni: int = 32, nj: int = 32, nk: int = 24,
                 nfields: int = 4, halo: int = 2):
        self.ni, self.nj, self.nk = ni, nj, nk
        self.nfields = nfields
        self.halo = halo
        self.field_bytes = ni * nj * nk * 4
        self.nbytes = self.field_bytes * nfields
        super().__init__()

    def make_send_buffer(self) -> np.ndarray:
        buf = np.arange(self.nbytes // 4, dtype="<f4")
        return buf.view(np.uint8)

    def _field(self, buf: np.ndarray, f: int) -> np.ndarray:
        start = f * self.field_bytes
        return (buf[start:start + self.field_bytes].view("<f4")
                .reshape(self.nk, self.nj, self.ni))


class WrfXVec(_WrfBase):
    """x-halo of every field: runs of ``halo`` float32 per (field, k, j).

    The deepest nest of the suite (field, k, j, i — plus the vector of
    fields = the paper's "3/4/5 nested loops").
    """

    meta = WorkloadMeta(
        name="WRF_x_vec",
        mpi_datatypes="struct of strided vectors",
        loop_structure="4 nested loops (non-contiguous)",
        memory_regions=False,
    )

    def build_layout(self) -> RunLayout:
        runs = []
        h = self.halo
        for f in range(self.nfields):
            base = f * self.field_bytes
            for k in range(self.nk):
                for j in range(self.nj):
                    off = base + ((k * self.nj + j) * self.ni) * 4
                    runs.append((off, h * 4))
        return RunLayout(runs, self.nbytes)

    def manual_pack(self, buf: np.ndarray) -> np.ndarray:
        h = self.halo
        out = np.empty(self.nfields * self.nk * self.nj * h, dtype="<f4")
        pos = 0
        for f in range(self.nfields):
            g = self._field(buf, f)
            for k in range(self.nk):
                # innermost (j, i<h) plane is vectorized
                block = g[k, :, :h].reshape(-1)
                out[pos:pos + block.shape[0]] = block
                pos += block.shape[0]
        return out.view(np.uint8)

    def manual_unpack(self, packed: np.ndarray, buf: np.ndarray) -> None:
        h = self.halo
        src = packed.view("<f4")
        pos = 0
        for f in range(self.nfields):
            g = self._field(buf, f)
            for k in range(self.nk):
                n = self.nj * h
                # g[k, :, :h] is non-contiguous; assign through the slice so
                # the write lands in the grid (reshape would copy).
                g[k, :, :h] = src[pos:pos + n].reshape(self.nj, h)
                pos += n


class WrfYVec(_WrfBase):
    """y-halo of every field: runs of ``halo * ni`` float32 per (field, k)."""

    meta = WorkloadMeta(
        name="WRF_y_vec",
        mpi_datatypes="struct of strided vectors",
        loop_structure="3 nested loops (non-contiguous)",
        memory_regions=False,
    )

    def build_layout(self) -> RunLayout:
        runs = []
        h = self.halo
        for f in range(self.nfields):
            base = f * self.field_bytes
            for k in range(self.nk):
                off = base + (k * self.nj * self.ni) * 4
                runs.append((off, h * self.ni * 4))
        return RunLayout(runs, self.nbytes)

    def manual_pack(self, buf: np.ndarray) -> np.ndarray:
        h = self.halo
        out = np.empty(self.nfields * self.nk * h * self.ni, dtype="<f4")
        pos = 0
        for f in range(self.nfields):
            g = self._field(buf, f)
            for k in range(self.nk):
                block = g[k, :h, :].reshape(-1)
                out[pos:pos + block.shape[0]] = block
                pos += block.shape[0]
        return out.view(np.uint8)

    def manual_unpack(self, packed: np.ndarray, buf: np.ndarray) -> None:
        h = self.halo
        src = packed.view("<f4")
        pos = 0
        for f in range(self.nfields):
            g = self._field(buf, f)
            for k in range(self.nk):
                n = h * self.ni
                g[k, :h, :].reshape(-1)[:] = src[pos:pos + n]
                pos += n
