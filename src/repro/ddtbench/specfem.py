"""SPECFEM3D boundary gather (DDTBench ``specfem3d_oc``-style).

Seismic-wave propagation: values of a global degrees-of-freedom array are
gathered at irregular boundary indices (an MPI indexed type over a single
float32 array, packed by one loop over the index list).  Like LAMMPS it is
an indexed pattern, but with 4-byte single-element runs, making regions
impracticable.
"""

from __future__ import annotations

import numpy as np

from .base import RunLayout, Workload, WorkloadMeta


class Specfem3dOc(Workload):
    """Gather ``nsend`` float32 DOFs at irregular indices from ``ndof``."""

    meta = WorkloadMeta(
        name="SPECFEM3D_oc",
        mpi_datatypes="indexed",
        loop_structure="single loop (irregular indices)",
        memory_regions=False,
    )
    element_dtype = np.dtype("<f4")

    def __init__(self, ndof: int = 40_000, nsend: int = 4_000, seed: int = 9):
        self.ndof = ndof
        self.nsend = min(nsend, ndof)
        rng = np.random.default_rng(seed)
        #: Sorted unique boundary indices (mesh surfaces are irregular but
        #: monotone in the global numbering).
        self.idx = np.sort(rng.choice(ndof, size=self.nsend, replace=False))
        self.nbytes = ndof * 4
        super().__init__()

    def build_layout(self) -> RunLayout:
        return RunLayout([(int(i) * 4, 4) for i in self.idx], self.nbytes)

    def make_send_buffer(self) -> np.ndarray:
        buf = np.sin(np.arange(self.ndof, dtype="<f4") * 0.01).astype("<f4")
        return buf.view(np.uint8)

    def manual_pack(self, buf: np.ndarray) -> np.ndarray:
        dof = buf.view("<f4")
        return dof[self.idx].copy().view(np.uint8)

    def manual_unpack(self, packed: np.ndarray, buf: np.ndarray) -> None:
        dof = buf.view("<f4")
        dof[self.idx] = packed.view("<f4")
