"""NAS LU face exchanges (DDTBench ``nas_lu_x`` / ``nas_lu_y``-style).

The LU pseudo-application exchanges faces of a 3-D grid of 5-component
cells.  We lay the grid out C-order as ``[ny][nz][nx][5]`` float64 so that:

* **LU_x** — a whole ``j`` slab ``[j][:][:][:]`` is one contiguous block:
  the *contiguous* row of Table I (2 nested loops in the original pack
  code; a single memory region here — regions win),
* **LU_y** — a fixed-``i`` pencil ``[:][:][i][:]`` is ``ny*nz`` runs of
  just 40 B: the strided-vector, non-contiguous row (2 nested loops; many
  tiny regions — the case where the paper measured the scatter/gather API
  *losing* to packing).
"""

from __future__ import annotations

import numpy as np

from .base import RunLayout, Workload, WorkloadMeta

NCOMP = 5
CELL = NCOMP * 8  # 5 float64 components


class NasLuX(Workload):
    """Contiguous slab exchange: one j-plane of [ny][nz][nx][5]."""

    meta = WorkloadMeta(
        name="NAS_LU_x",
        mpi_datatypes="contiguous",
        loop_structure="2 nested loops",
        memory_regions=True,
    )
    element_dtype = np.dtype("<f8")

    def __init__(self, nx: int = 33, ny: int = 33, nz: int = 33, j: int = 1):
        self.nx, self.ny, self.nz = nx, ny, nz
        self.j = j
        self.nbytes = nx * ny * nz * CELL
        super().__init__()

    def build_layout(self) -> RunLayout:
        slab = self.nz * self.nx * CELL
        return RunLayout([(self.j * slab, slab)], self.nbytes)

    def make_send_buffer(self) -> np.ndarray:
        buf = np.arange(self.nbytes // 8, dtype="<f8") * 0.125
        return buf.view(np.uint8)

    def manual_pack(self, buf: np.ndarray) -> np.ndarray:
        g = buf.view("<f8").reshape(self.ny, self.nz, self.nx, NCOMP)
        out = np.empty(self.nz * self.nx * NCOMP, dtype="<f8")
        row = self.nx * NCOMP
        pos = 0
        for k in range(self.nz):  # 2 nested loops: k, then the i-row copy
            out[pos:pos + row] = g[self.j, k].reshape(row)
            pos += row
        return out.view(np.uint8)

    def manual_unpack(self, packed: np.ndarray, buf: np.ndarray) -> None:
        g = buf.view("<f8").reshape(self.ny, self.nz, self.nx, NCOMP)
        src = packed.view("<f8")
        row = self.nx * NCOMP
        pos = 0
        for k in range(self.nz):
            g[self.j, k].reshape(row)[:] = src[pos:pos + row]
            pos += row


class NasLuY(Workload):
    """Strided pencil exchange: the i-column of every (j, k) row."""

    meta = WorkloadMeta(
        name="NAS_LU_y",
        mpi_datatypes="strided vector",
        loop_structure="2 nested loops (non-contiguous)",
        memory_regions=True,
    )
    element_dtype = np.dtype("<f8")

    def __init__(self, nx: int = 33, ny: int = 33, nz: int = 33, i: int = 1):
        self.nx, self.ny, self.nz = nx, ny, nz
        self.i = i
        self.nbytes = nx * ny * nz * CELL
        super().__init__()

    def build_layout(self) -> RunLayout:
        runs = []
        for j in range(self.ny):
            for k in range(self.nz):
                off = ((j * self.nz + k) * self.nx + self.i) * CELL
                runs.append((off, CELL))
        return RunLayout(runs, self.nbytes)

    def make_send_buffer(self) -> np.ndarray:
        buf = np.arange(self.nbytes // 8, dtype="<f8") * -0.25
        return buf.view(np.uint8)

    def manual_pack(self, buf: np.ndarray) -> np.ndarray:
        g = buf.view("<f8").reshape(self.ny, self.nz, self.nx, NCOMP)
        out = np.empty(self.ny * self.nz * NCOMP, dtype="<f8")
        pos = 0
        for j in range(self.ny):  # the paper's Listing 9 is this very nest
            for k in range(self.nz):
                out[pos:pos + NCOMP] = g[j, k, self.i]
                pos += NCOMP
        return out.view(np.uint8)

    def manual_unpack(self, packed: np.ndarray, buf: np.ndarray) -> None:
        g = buf.view("<f8").reshape(self.ny, self.nz, self.nx, NCOMP)
        src = packed.view("<f8")
        pos = 0
        for j in range(self.ny):
            for k in range(self.nz):
                g[j, k, self.i][:] = src[pos:pos + NCOMP]
                pos += NCOMP
