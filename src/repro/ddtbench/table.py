"""Regenerate the paper's Table I from workload metadata."""

from __future__ import annotations

from .registry import WORKLOADS


def table1_rows() -> list[dict[str, str]]:
    """One dict per workload: the four Table I columns plus measured stats."""
    rows = []
    for name, cls in WORKLOADS.items():
        w = cls()
        merged = w.layout.merged()
        rows.append({
            "Benchmark": name,
            "MPI Datatypes": w.meta.mpi_datatypes,
            "Loop Structure": w.meta.loop_structure,
            "Memory Regions": "yes" if w.meta.memory_regions else "",
            # Extra columns the simulator can compute exactly:
            "Packed Bytes": str(w.packed_bytes),
            "Region Count": str(merged.run_count),
            "Min/Max Region": (f"{int(merged.runs[:, 1].min())}/"
                               f"{int(merged.runs[:, 1].max())}"
                               if merged.run_count else "-"),
        })
    return rows


def format_table1() -> str:
    """ASCII rendering of Table I (plus measured region statistics)."""
    rows = table1_rows()
    cols = list(rows[0].keys())
    widths = {c: max(len(c), *(len(r[c]) for r in rows)) for c in cols}
    sep = "+".join("-" * (widths[c] + 2) for c in cols)
    out = [" | ".join(c.ljust(widths[c]) for c in cols), sep]
    for r in rows:
        out.append(" | ".join(r[c].ljust(widths[c]) for c in cols))
    return "\n".join(out)
