"""DDTBench workload subset (the paper's Section V.C evaluation)."""

from .base import RunLayout, Workload, WorkloadMeta
from .fft import Fft2
from .lammps import Lammps, LammpsFull
from .milc import Milc
from .nas_lu import NasLuX, NasLuY
from .nas_mg import NasMgX, NasMgY, NasMgZ
from .registry import WORKLOADS, all_workloads, make_workload
from .specfem import Specfem3dOc
from .table import format_table1, table1_rows
from .wrf import WrfXVec, WrfYVec

__all__ = [
    "Workload", "WorkloadMeta", "RunLayout",
    "Lammps", "LammpsFull", "Milc", "NasLuX", "NasLuY", "NasMgX", "NasMgY",
    "NasMgZ", "WrfXVec", "WrfYVec", "Fft2", "Specfem3dOc",
    "WORKLOADS", "make_workload", "all_workloads",
    "table1_rows", "format_table1",
]
