"""LAMMPS atom exchange (DDTBench ``lammps_atomic``-style).

Molecular dynamics ghost-atom exchange: a *single loop* over a list of atom
indices packs, per atom, entries from **six separate arrays** (positions,
velocities, tag, type, mask, charge).  The index list has non-unit stride
through the arrays, so the pattern is indexed/struct in MPI-datatype terms
and — per the paper's Table I — memory regions are impracticable (thousands
of 4-24 byte runs).
"""

from __future__ import annotations

import numpy as np

from .base import RunLayout, Workload, WorkloadMeta

#: Per-atom packed bytes: x(3 f64) + v(3 f64) + tag,type,mask (i32) + q(f64).
ATOM_PACKED = 24 + 24 + 4 + 4 + 4 + 8


class Lammps(Workload):
    """Exchange of ``nsend`` atoms out of ``natoms``, stride-selected."""

    meta = WorkloadMeta(
        name="LAMMPS",
        mpi_datatypes="indexed, struct",
        loop_structure="single loop, 6 arrays (non-unit stride)",
        memory_regions=False,
    )
    element_dtype = np.dtype("<u1")  # heterogeneous: runs stay in bytes

    def __init__(self, natoms: int = 4096, nsend: int = 1024, stride: int = 3):
        self.natoms = natoms
        self.nsend = min(nsend, natoms // max(stride, 1))
        self.stride = stride
        #: Selected atom indices (the LAMMPS border list).
        self.idx = (np.arange(self.nsend, dtype=np.int64) * stride) % natoms
        # Section byte offsets of the six arrays inside one backing buffer.
        self.off_x = 0
        self.off_v = self.off_x + natoms * 24
        self.off_tag = self.off_v + natoms * 24
        self.off_type = self.off_tag + natoms * 4
        self.off_mask = self.off_type + natoms * 4
        self.off_q = self.off_mask + natoms * 4
        self.nbytes = self.off_q + natoms * 8
        super().__init__()

    def build_layout(self) -> RunLayout:
        runs = []
        for i in self.idx:
            i = int(i)
            runs.append((self.off_x + 24 * i, 24))
            runs.append((self.off_v + 24 * i, 24))
            runs.append((self.off_tag + 4 * i, 4))
            runs.append((self.off_type + 4 * i, 4))
            runs.append((self.off_mask + 4 * i, 4))
            runs.append((self.off_q + 8 * i, 8))
        return RunLayout(runs, self.nbytes)

    def make_send_buffer(self) -> np.ndarray:
        buf = np.zeros(self.nbytes, dtype=np.uint8)
        n = self.natoms
        buf[self.off_x:self.off_v].view("<f8")[:] = np.arange(3 * n) * 0.5
        buf[self.off_v:self.off_tag].view("<f8")[:] = np.arange(3 * n) * -0.25
        buf[self.off_tag:self.off_type].view("<i4")[:] = np.arange(n)
        buf[self.off_type:self.off_mask].view("<i4")[:] = np.arange(n) % 7
        buf[self.off_mask:self.off_q].view("<i4")[:] = 1 << (np.arange(n) % 12)
        # Slice to exactly the q section so subclasses may append sections.
        buf[self.off_q:self.off_q + n * 8].view("<f8")[:] = np.sin(np.arange(n))
        return buf

    # -- manual pack: the single loop over six arrays, vectorized over atoms

    def manual_pack(self, buf: np.ndarray) -> np.ndarray:
        idx = self.idx
        n = idx.shape[0]
        out = np.empty(n * ATOM_PACKED, dtype=np.uint8)
        rows = out.reshape(n, ATOM_PACKED)
        x = buf[self.off_x:self.off_v].reshape(self.natoms, 24)
        v = buf[self.off_v:self.off_tag].reshape(self.natoms, 24)
        tag = buf[self.off_tag:self.off_type].reshape(self.natoms, 4)
        typ = buf[self.off_type:self.off_mask].reshape(self.natoms, 4)
        mask = buf[self.off_mask:self.off_q].reshape(self.natoms, 4)
        q = buf[self.off_q:self.off_q + self.natoms * 8].reshape(self.natoms, 8)
        rows[:, 0:24] = x[idx]
        rows[:, 24:48] = v[idx]
        rows[:, 48:52] = tag[idx]
        rows[:, 52:56] = typ[idx]
        rows[:, 56:60] = mask[idx]
        rows[:, 60:68] = q[idx]
        return out

    def manual_unpack(self, packed: np.ndarray, buf: np.ndarray) -> None:
        idx = self.idx
        n = idx.shape[0]
        rows = packed.reshape(n, ATOM_PACKED)
        buf[self.off_x:self.off_v].reshape(self.natoms, 24)[idx] = rows[:, 0:24]
        buf[self.off_v:self.off_tag].reshape(self.natoms, 24)[idx] = rows[:, 24:48]
        buf[self.off_tag:self.off_type].reshape(self.natoms, 4)[idx] = rows[:, 48:52]
        buf[self.off_type:self.off_mask].reshape(self.natoms, 4)[idx] = rows[:, 52:56]
        buf[self.off_mask:self.off_q].reshape(self.natoms, 4)[idx] = rows[:, 56:60]
        buf[self.off_q:self.off_q + self.natoms * 8] \
            .reshape(self.natoms, 8)[idx] = rows[:, 60:68]


class LammpsFull(Lammps):
    """The ``lammps_full`` variant: atomic data plus molecular topology.

    Adds per-atom molecule id (i32) and dihedral partners (4 x i32) to the
    exchange, mirroring DDTBench's distinction between ``lammps_atomic``
    and ``lammps_full`` — same single-loop indexed structure, a third more
    bytes per atom.
    """

    meta = WorkloadMeta(
        name="LAMMPS_full",
        mpi_datatypes="indexed, struct",
        loop_structure="single loop, 8 arrays (non-unit stride)",
        memory_regions=False,
    )

    def __init__(self, natoms: int = 4096, nsend: int = 1024, stride: int = 3):
        super().__init__(natoms=natoms, nsend=nsend, stride=stride)
        self.off_mol = self.nbytes
        self.off_dih = self.off_mol + natoms * 4
        self.nbytes = self.off_dih + natoms * 16
        # Rebuild with the two extra per-atom sections appended.
        self.layout = self.build_layout()

    def build_layout(self):
        if not hasattr(self, "off_mol"):
            return super().build_layout()
        base = super().build_layout()
        runs = [tuple(r) for r in base.runs]
        # Interleave per atom: atomic runs (6 per atom) then mol + dihedral.
        out = []
        per_atom = 6
        for k, i in enumerate(self.idx):
            i = int(i)
            out.extend(runs[k * per_atom:(k + 1) * per_atom])
            out.append((self.off_mol + 4 * i, 4))
            out.append((self.off_dih + 16 * i, 16))
        return RunLayout(out, self.nbytes)

    def make_send_buffer(self):
        buf = super().make_send_buffer()  # already sized for the full layout
        n = self.natoms
        buf[self.off_mol:self.off_dih].view("<i4")[:] = np.arange(n) // 4
        buf[self.off_dih:].view("<i4")[:] = (np.arange(4 * n) * 7) % n
        return buf

    def manual_pack(self, buf):
        idx = self.idx
        n = idx.shape[0]
        atom_bytes = ATOM_PACKED + 4 + 16
        out = np.empty(n * atom_bytes, dtype=np.uint8)
        rows = out.reshape(n, atom_bytes)
        rows[:, :ATOM_PACKED] = super().manual_pack(
            buf[: self.off_mol]).reshape(n, ATOM_PACKED)
        mol = buf[self.off_mol:self.off_dih].reshape(self.natoms, 4)
        dih = buf[self.off_dih:].reshape(self.natoms, 16)
        rows[:, ATOM_PACKED:ATOM_PACKED + 4] = mol[idx]
        rows[:, ATOM_PACKED + 4:] = dih[idx]
        return out

    def manual_unpack(self, packed, buf):
        idx = self.idx
        n = idx.shape[0]
        atom_bytes = ATOM_PACKED + 4 + 16
        rows = packed.reshape(n, atom_bytes)
        super().manual_unpack(
            np.ascontiguousarray(rows[:, :ATOM_PACKED]).reshape(-1),
            buf[: self.off_mol])
        buf[self.off_mol:self.off_dih].reshape(self.natoms, 4)[idx] = \
            rows[:, ATOM_PACKED:ATOM_PACKED + 4]
        buf[self.off_dih:].reshape(self.natoms, 16)[idx] = \
            rows[:, ATOM_PACKED + 4:]
