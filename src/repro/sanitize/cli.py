"""``repro-analyze sanitize`` — run programs under the dynamic sanitizer.

Program convention: a file defines ``main(comm)`` (the same entry the
examples use for ``repro.mpi.run``) and optionally a module-level rank
count (``NPROCS``/``NRANKS``/``PROCS``).  Files without a ``main(comm)``
entry are skipped with a notice, so whole directories (``examples/``) can
be swept.  ``--ddtbench`` instead runs the DDTBench workload registry as
sanitized pingpongs over every practicable transfer method.

Exit status: 0 clean, 1 findings (error severity by default; any severity
under ``--strict``) or an aborted job, 2 usage errors.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import importlib.util
import inspect
import io
import json
import os
import sys
from typing import Optional

from ..analyze.diagnostics import Diagnostic, sort_diagnostics
from ..errors import RuntimeAbort
from ..ucp.transport import TransportUnavailableError
from .report import SCHEMA_VERSION, SanitizeReport

#: Module attributes consulted (in order) for a program's rank count.
_NPROC_ATTRS = ("NPROCS", "NRANKS", "PROCS")

#: Transfer methods the ddtbench sweep exercises.
_DDT_METHODS = ("derived", "custom-pack", "custom-region")


def _load_entry(path: str):
    """Import a program file; returns (fn, nprocs, job_kwargs, error).

    ``fn`` is None with a human reason in ``error`` when the file defines
    no ``main(comm)``-style entry (not a failure — the file is skipped).
    ``job_kwargs`` carries the program's optional fault-injection setup
    (module-level ``FAULTS`` / ``RELIABILITY``, in the dict/bool forms
    :func:`repro.mpi.run` accepts), so seeded chaos fixtures run under
    the sanitizer with their faults live.
    """
    modname = "_repro_sanitize_" + os.path.basename(path)[:-3].replace(
        "-", "_") + f"_{abs(hash(os.path.abspath(path))) % 10 ** 8}"
    try:
        spec = importlib.util.spec_from_file_location(modname, path)
        mod = importlib.util.module_from_spec(spec)
        sys.modules[modname] = mod
        with contextlib.redirect_stdout(io.StringIO()):
            spec.loader.exec_module(mod)
    except Exception as exc:
        sys.modules.pop(modname, None)
        return None, 0, {}, f"import failed: {type(exc).__name__}: {exc}"
    sys.modules.pop(modname, None)

    fn = getattr(mod, "main", None)
    if callable(fn):
        try:
            params = list(inspect.signature(fn).parameters.values())
        except (TypeError, ValueError):
            params = []
        required = [p for p in params if p.default is inspect.Parameter.empty
                    and p.kind in (p.POSITIONAL_ONLY,
                                   p.POSITIONAL_OR_KEYWORD)]
        if len(required) == 1 and required[0].name == "comm":
            nprocs = next((int(getattr(mod, a)) for a in _NPROC_ATTRS
                           if isinstance(getattr(mod, a, None), int)), 2)
            job_kwargs = {}
            faults = getattr(mod, "FAULTS", None)
            if faults is not None:
                job_kwargs["faults"] = faults
            reliability = getattr(mod, "RELIABILITY", None)
            if reliability is not None:
                job_kwargs["reliability"] = reliability
            return fn, nprocs, job_kwargs, ""
    return None, 0, {}, "no main(comm) entry"


def run_program(path: str, nprocs: Optional[int] = None,
                timeout: float = 60.0,
                transport: Optional[str] = None) -> Optional[SanitizeReport]:
    """Run one program file under the sanitizer; None when skipped."""
    from ..mpi import run

    fn, module_nprocs, job_kwargs, error = _load_entry(path)
    if fn is None:
        if error.startswith("import failed"):
            return SanitizeReport(
                nprocs=0, aborted=True, failures={-1: error}, program=path)
        return None
    n = nprocs or module_nprocs
    try:
        # The program's own prints are not part of the tool's output
        # (they would corrupt --format json); swallow them.
        with contextlib.redirect_stdout(io.StringIO()):
            result = run(fn, nprocs=n, sanitize=True, timeout=timeout,
                         transport=transport, **job_kwargs)
        report = result.sanitizer_report
        report.reliability = result.reliability
    except RuntimeAbort as exc:
        report = exc.sanitizer_report or SanitizeReport(
            nprocs=n, aborted=True,
            failures={r: f"{type(e).__name__}: {e}"
                      for r, e in exc.failures.items()})
    report.program = path
    return report


def run_ddtbench(names=None, timeout: float = 60.0,
                 transport: Optional[str] = None) -> list[SanitizeReport]:
    """Sanitized pingpong of every registry workload x transfer method."""
    from ..ddtbench import WORKLOADS, make_workload
    from ..mpi import run

    reports = []
    for name in (names or sorted(WORKLOADS)):
        probe = make_workload(name)
        for method in _DDT_METHODS:
            if method == "custom-region" and not probe.meta.memory_regions:
                continue

            def fn(comm, _name=name, _method=method):
                w = make_workload(_name)
                if _method == "derived":
                    dt = w.derived_datatype()
                elif _method == "custom-pack":
                    dt = w.custom_pack_datatype()
                else:
                    dt = w.custom_region_datatype()
                if comm.rank == 0:
                    comm.send(w.make_send_buffer(), dest=1,
                              datatype=dt, count=1)
                else:
                    rb = w.make_recv_buffer()
                    comm.recv(rb, source=0, datatype=dt, count=1)

            label = f"ddtbench:{name}:{method}"
            try:
                with contextlib.redirect_stdout(io.StringIO()):
                    result = run(fn, nprocs=2, sanitize=True,
                                 timeout=timeout, transport=transport)
                report = result.sanitizer_report
            except RuntimeAbort as exc:
                report = exc.sanitizer_report or SanitizeReport(
                    nprocs=2, aborted=True,
                    failures={r: f"{type(e).__name__}: {e}"
                              for r, e in exc.failures.items()})
            report.program = label
            reports.append(report)
    return reports


def _stamped(report: SanitizeReport) -> list[Diagnostic]:
    """The report's findings with the program path on each diagnostic."""
    return [dataclasses.replace(d, file=report.program)
            for d in report.diagnostics]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-analyze sanitize",
        description="Run MPI programs on the simulated fabric with the "
                    "dynamic sanitizer attached.")
    p.add_argument("programs", nargs="*",
                   help="program files or directories (main(comm) entries)")
    p.add_argument("--nprocs", type=int, default=None,
                   help="override the rank count (default: the program's "
                        "NPROCS/NRANKS/PROCS, else 2)")
    p.add_argument("--timeout", type=float, default=60.0,
                   help="wall-clock seconds per job (default: 60)")
    p.add_argument("--transport", default=None,
                   help="transport backend for the sanitized jobs "
                        "(inproc/asyncio; shm cannot host the sanitizer). "
                        "Default: $REPRO_TRANSPORT, else inproc")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="output format (default: text)")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero on warnings too, not just errors")
    p.add_argument("--ddtbench", action="store_true",
                   help="also run the DDTBench workload registry as "
                        "sanitized pingpongs")
    p.add_argument("--workloads", default="",
                   help="comma-separated ddtbench workload names "
                        "(default: all)")
    return p


def _iter_programs(paths) -> list[str]:
    out = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames
                                     if d != "__pycache__"
                                     and not d.startswith("."))
                for fn in sorted(filenames):
                    if fn.endswith(".py"):
                        out.append(os.path.join(dirpath, fn))
        elif os.path.isfile(path):
            out.append(path)
        else:
            raise FileNotFoundError(path)
    return out


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    try:
        ns = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0) and 2

    if not ns.programs and not ns.ddtbench:
        parser.print_usage(sys.stderr)
        print("error: no programs given (or use --ddtbench)",
              file=sys.stderr)
        return 2

    try:
        files = _iter_programs(ns.programs)
    except FileNotFoundError as exc:
        print(f"error: no such file or directory: {exc}", file=sys.stderr)
        return 2

    reports: list[SanitizeReport] = []
    skipped: list[str] = []
    try:
        for path in files:
            report = run_program(path, nprocs=ns.nprocs, timeout=ns.timeout,
                                 transport=ns.transport)
            if report is None:
                skipped.append(path)
            else:
                reports.append(report)
        if ns.ddtbench:
            names = [w for w in ns.workloads.split(",") if w] or None
            reports.extend(run_ddtbench(names, timeout=ns.timeout,
                                        transport=ns.transport))
    except TransportUnavailableError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    findings = sort_diagnostics(
        [d for rep in reports for d in _stamped(rep)])
    aborted = [rep for rep in reports if rep.aborted]
    if ns.strict:
        failing = findings
    else:
        failing = [d for d in findings if d.severity == "error"]

    if ns.format == "json":
        by_code: dict[str, int] = {}
        for d in findings:
            by_code[d.code] = by_code.get(d.code, 0) + 1
        doc = {
            "version": SCHEMA_VERSION,
            "tool": "repro.sanitize",
            "findings": [d.to_dict() for d in findings],
            "summary": {
                "programs": len(reports),
                "skipped": skipped,
                "findings": len(findings),
                "aborted": [rep.program for rep in aborted],
                "failures": {str(r): msg for rep in aborted
                             for r, msg in sorted(rep.failures.items())},
                "by_code": dict(sorted(by_code.items())),
            },
        }
        reliability = {rep.program: rep.reliability_totals()
                       for rep in reports if rep.reliability}
        if reliability:
            doc["summary"]["reliability"] = reliability
        print(json.dumps(doc, indent=2))
    else:
        for d in findings:
            print(d.format_text())
        for rep in aborted:
            for r, msg in sorted(rep.failures.items()):
                print(f"{rep.program}: rank {r} failed: {msg}")
        for rep in reports:
            if not rep.reliability:
                continue
            totals = {k: v for k, v in rep.reliability_totals().items()
                      if v}
            shown = ", ".join(
                f"{k}={v:.3g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in sorted(totals.items())) or "all zero"
            print(f"{rep.program}: reliability: {shown}")
        for path in skipped:
            print(f"skipped (no main(comm) entry): {path}")
        verdict = "clean" if not findings and not aborted else \
            f"{len(findings)} finding(s)"
        print(f"{verdict}: {len(reports)} sanitized job(s), "
              f"{len(skipped)} skipped")
    return 1 if failing or aborted else 0
