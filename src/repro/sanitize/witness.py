"""Dynamic lockset witness: runtime confirmation of RPD8xx findings.

The static analyzer in :mod:`repro.analyze.races` *infers* locksets from
source; this module *observes* them.  Inside a :class:`LocksetWitness`
context every ``threading.Lock``/``threading.RLock`` the program creates
is wrapped so the witness knows, per thread, exactly which locks are held
at any instant, and every attribute write on an instrumented class is
recorded together with that held-lock set.  A race is **confirmed** when
two or more threads wrote the same attribute of the same object with no
lock in common — the classic lockset (Eraser) discipline, applied to the
fabric the simulator actually runs.

The witness is deliberately scoped:

* Only locks — and instrumented objects — created *inside* the context
  are tracked.  An object built before patching guards itself with real,
  invisible locks, so judging its writes would be unsound.  The canned
  job in :func:`run_shipped_witness` therefore builds the whole fabric
  inside the context, which the per-job construction in
  :mod:`repro.mpi.runtime` makes natural.
* Writes during ``__init__`` are excluded — construction happens before
  the object is visible to a second thread (the fabric publishes objects
  via queues and matcher tables, all locked).
* :meth:`LocksetWitness.checkpoint` records the held-lock set at a named
  program point, which is how tests confirm RPD803 findings ("user code
  runs with the cache lock held") and their fixes ("… with no lock
  held").
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["LocksetWitness", "WitnessConfirmation", "WitnessReport",
           "run_shipped_witness"]


class _HeldState(threading.local):
    """Per-thread witness state: held wrapped locks and init nesting."""

    def __init__(self):
        self.held: list[int] = []
        self.init_depth = 0


class _WitnessLock:
    """A real lock plus per-thread held bookkeeping.

    Duck-types the ``threading.Lock``/``RLock`` surface that the fabric
    (and ``threading.Condition``/``Event``, which build on module-level
    ``Lock()``) actually uses.  ``Condition`` falls back to plain
    ``acquire``/``release`` when ``_release_save`` is absent, so waits on
    a wrapped lock keep the held set exact.
    """

    __slots__ = ("_witness", "_real", "seq", "_reentrant")

    def __init__(self, witness: "LocksetWitness", real, seq: int,
                 reentrant: bool):
        self._witness = witness
        self._real = real
        self.seq = seq
        self._reentrant = reentrant

    def acquire(self, blocking=True, timeout=-1):
        got = self._real.acquire(blocking, timeout)
        if got:
            self._witness._tls.held.append(self.seq)
        return got

    def release(self):
        self._real.release()
        held = self._witness._tls.held
        # Remove one hold (an RLock may appear more than once).
        for i in range(len(held) - 1, -1, -1):
            if held[i] == self.seq:
                del held[i]
                break

    def locked(self):
        return self._real.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False

    def __repr__(self):
        kind = "RLock" if self._reentrant else "Lock"
        return f"<witnessed {kind} #{self.seq}>"


@dataclass
class WitnessConfirmation:
    """One runtime-confirmed race: who wrote, how often, under nothing."""

    cls: str
    attr: str
    threads: int = 0
    writes: int = 0

    def to_dict(self) -> dict:
        return {"class": self.cls, "attr": self.attr,
                "threads": self.threads, "writes": self.writes}


@dataclass
class WitnessReport:
    """What the witness saw: confirmations, per-attribute discipline,
    checkpoints."""

    confirmed: list = field(default_factory=list)
    #: ``"Cls.attr" -> {"writes", "threads", "always_locked"}`` for every
    #: post-init write observed — the runtime counterpart of the static
    #: audit's lockset table.
    observed: dict = field(default_factory=dict)
    #: ``(tag, thread_name, held_count)`` per :meth:`checkpoint` call.
    checkpoints: list = field(default_factory=list)
    locks_created: int = 0

    def held_at(self, tag: str) -> list:
        """Held-lock counts recorded at checkpoint ``tag``."""
        return [n for t, _thread, n in self.checkpoints if t == tag]

    def to_dict(self) -> dict:
        return {
            "confirmed": [c.to_dict() for c in self.confirmed],
            "observed": self.observed,
            "checkpoints": [{"tag": t, "thread": th, "held": n}
                            for t, th, n in self.checkpoints],
            "locks_created": self.locks_created,
        }


class LocksetWitness:
    """Context manager that patches lock creation and instruments classes.

    Usage::

        w = LocksetWitness()
        w.instrument(BufferPool, TagMatcher)
        with w:
            ...   # build the fabric and run the job in here
        report = w.report()
        assert not report.confirmed
    """

    def __init__(self):
        # Real (unwrapped) lock — created before any patching so the
        # witness's own bookkeeping never shows up in a held set.
        self._elock = threading.Lock()
        self._tls = _HeldState()
        self._events: list[tuple] = []      # (cls, attr, obj, thread, held)
        self._known: set[int] = set()       # ids constructed in-context
        self._publish_ok: dict[str, frozenset] = {}
        self._checkpoints: list[tuple] = []
        self._targets: list[tuple] = []     # (cls, orig_setattr, orig_init)
        self._classes: list[type] = []
        self._seq = 0
        self._active = False
        self._saved: dict = {}

    # -- configuration ----------------------------------------------------

    def instrument(self, *classes: type, publish_ok=()) -> None:
        """Record post-``__init__`` attribute writes on these classes.

        ``publish_ok`` names attributes whose cross-thread ordering comes
        from happens-before edges the lockset discipline cannot see —
        ``Event.set()`` publication or thread join (the static audit's
        Event-publish exemption).  They stay in the observed table but
        are never confirmed as races.
        """
        if self._active:
            raise RuntimeError("instrument() before entering the context")
        self._classes.extend(classes)
        for cls in classes:
            self._publish_ok[cls.__name__] = frozenset(publish_ok)

    # -- recording --------------------------------------------------------

    def _make_lock(self, reentrant: bool):
        real = (self._saved["RLock"]() if reentrant
                else self._saved["Lock"]())
        with self._elock:
            self._seq += 1
            seq = self._seq
        return _WitnessLock(self, real, seq, reentrant)

    def _record(self, cls_name: str, attr: str, obj_id: int) -> None:
        tls = self._tls
        event = (cls_name, attr, obj_id, threading.get_ident(),
                 tuple(tls.held))
        with self._elock:
            self._events.append(event)

    def checkpoint(self, tag: str) -> None:
        """Record the caller's held-lock set at a named program point."""
        entry = (tag, threading.current_thread().name,
                 len(self._tls.held))
        with self._elock:
            self._checkpoints.append(entry)

    # -- patching ---------------------------------------------------------

    def __enter__(self):
        if self._active:
            raise RuntimeError("witness context is not re-entrant")
        self._saved = {"Lock": threading.Lock, "RLock": threading.RLock}
        threading.Lock = lambda: self._make_lock(False)    # type: ignore
        threading.RLock = lambda: self._make_lock(True)    # type: ignore
        for cls in self._classes:
            orig_setattr = cls.__setattr__
            orig_init = cls.__init__
            self._targets.append((cls, orig_setattr, orig_init))
            cls.__setattr__ = self._wrap_setattr(cls.__name__, orig_setattr)
            cls.__init__ = self._wrap_init(orig_init)
        self._active = True
        return self

    def __exit__(self, *exc):
        threading.Lock = self._saved["Lock"]       # type: ignore
        threading.RLock = self._saved["RLock"]     # type: ignore
        for cls, orig_setattr, orig_init in self._targets:
            cls.__setattr__ = orig_setattr
            cls.__init__ = orig_init
        self._targets.clear()
        self._active = False
        return False

    def _wrap_setattr(self, cls_name: str, orig):
        witness = self

        def __setattr__(obj, name, value):
            if not witness._tls.init_depth and id(obj) in witness._known:
                witness._record(cls_name, name, id(obj))
            orig(obj, name, value)

        return __setattr__

    def _wrap_init(self, orig):
        witness = self

        def __init__(obj, *args, **kwargs):
            witness._tls.init_depth += 1
            try:
                orig(obj, *args, **kwargs)
            finally:
                witness._tls.init_depth -= 1
            with witness._elock:
                witness._known.add(id(obj))

        return __init__

    # -- aggregation ------------------------------------------------------

    def report(self) -> WitnessReport:
        rep = WitnessReport(checkpoints=list(self._checkpoints),
                            locks_created=self._seq)
        per_obj: dict[tuple, list] = {}
        for cls, attr, obj, thread, held in self._events:
            per_obj.setdefault((cls, attr, obj), []).append((thread, held))
        confirmed: dict[tuple, WitnessConfirmation] = {}
        for (cls, attr, _obj), evs in sorted(per_obj.items()):
            key = f"{cls}.{attr}"
            publish_ordered = attr in self._publish_ok.get(cls, ())
            seen = rep.observed.setdefault(
                key, {"writes": 0, "threads": 0, "always_locked": True,
                      "publish_ordered": publish_ordered})
            writers = {t for t, _ in evs}
            seen["writes"] += len(evs)
            seen["threads"] = max(seen["threads"], len(writers))
            if any(not held for _, held in evs):
                seen["always_locked"] = False
            if len(writers) < 2 or publish_ordered:
                continue
            common = set(evs[0][1])
            for _, held in evs[1:]:
                common &= set(held)
            if common:
                continue
            conf = confirmed.setdefault(
                (cls, attr), WitnessConfirmation(cls=cls, attr=attr))
            conf.writes += len(evs)
            conf.threads = max(conf.threads, len(writers))
        rep.confirmed = [confirmed[k] for k in sorted(confirmed)]
        return rep


def run_shipped_witness(nprocs: int = 4, iters: int = 4) -> WitnessReport:
    """The canned confirmation job behind ``repro-analyze races --witness``.

    Builds the shipped fabric *inside* a witness context and drives it two
    ways: a ring-exchange multi-rank job (every rank both sends and
    receives, wildcard receives exercise the matcher) and a bare-metal
    hammer on a fresh :class:`~repro.ucp.wire._MsgIdAllocator`.  A clean
    tree must produce zero confirmations; re-introducing either fixed
    race (the GIL counter, an unlocked pool) makes this fail.
    """
    import numpy as np

    from ..mpi import run
    from ..ucp.memory import BufferPool, MemoryTracker
    from ..ucp.tagmatch import TagMatcher
    from ..ucp.wire import WireMessage, _MsgIdAllocator

    witness = LocksetWitness()
    witness.instrument(BufferPool, MemoryTracker, TagMatcher,
                       _MsgIdAllocator)
    # WireMessage completion fields are published via ``completed.set()``
    # (or the end-of-job sweep after thread join) — ordered, but by
    # happens-before edges a lockset cannot see.
    witness.instrument(WireMessage,
                       publish_ok={"chunks", "completion_time", "error",
                                   "poisoned", "duplicate_of"})

    def main(comm):
        data = np.arange(512, dtype=np.float64) + comm.rank
        out = np.empty_like(data)
        right = (comm.rank + 1) % comm.size
        for it in range(iters):
            req = comm.isend(data, dest=right, tag=it)
            comm.recv(out, tag=it)          # wildcard source
            req.wait()
        comm.barrier()

    with witness:
        run(main, nprocs=nprocs)
        # Direct hammer: the allocator fix must hold without the fabric's
        # own serialization in front of it.
        alloc = _MsgIdAllocator()
        issued: list[int] = []

        def spin():
            got = [alloc.allocate() for _ in range(250)]
            with witness._elock:
                issued.extend(got)

        threads = [threading.Thread(target=spin, name=f"alloc-{i}")
                   for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if len(set(issued)) != len(issued):
            raise AssertionError("msg-id allocator issued duplicate ids")
    return witness.report()
