"""The sanitizer's result object: diagnostics plus job-level verdicts."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..analyze.diagnostics import Diagnostic, sort_diagnostics

#: JSON schema version shared with ``repro.analyze`` (PR 1's schema v1).
SCHEMA_VERSION = 1


@dataclass
class SanitizeReport:
    """Everything the sanitizer learned about one job."""

    nprocs: int
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: True when the job was aborted (rank failure or detected deadlock).
    aborted: bool = False
    #: Per-rank failure summaries ("DeadlockError: ...") when aborted.
    failures: dict[int, str] = field(default_factory=dict)
    #: Source file the job came from (CLI runs); stamped onto findings.
    program: Optional[str] = None
    #: Per-rank reliability counters (``ReliabilityStats`` snapshots) when
    #: the job ran on a fault-injected fabric; empty otherwise.
    reliability: list[dict] = field(default_factory=list)

    def __post_init__(self):
        self.diagnostics = sort_diagnostics(self.diagnostics)

    @property
    def clean(self) -> bool:
        return not self.diagnostics and not self.aborted

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def reliability_totals(self) -> dict[str, int | float]:
        """Job-wide reliability counters (sum over ranks); empty if none."""
        totals: dict[str, int | float] = {}
        for snap in self.reliability:
            for key, val in snap.items():
                totals[key] = totals.get(key, 0) + val
        return totals

    def to_dict(self) -> dict:
        """JSON rendering (same envelope as ``repro.analyze --format json``)."""
        by_code: dict[str, int] = {}
        by_severity: dict[str, int] = {}
        for d in self.diagnostics:
            by_code[d.code] = by_code.get(d.code, 0) + 1
            by_severity[d.severity] = by_severity.get(d.severity, 0) + 1
        doc = {
            "version": SCHEMA_VERSION,
            "tool": "repro.sanitize",
            "findings": [d.to_dict() for d in self.diagnostics],
            "summary": {
                "nprocs": self.nprocs,
                "findings": len(self.diagnostics),
                "aborted": self.aborted,
                "failures": {str(r): msg for r, msg in
                             sorted(self.failures.items())},
                "by_code": dict(sorted(by_code.items())),
                "by_severity": dict(sorted(by_severity.items())),
            },
        }
        if self.reliability:
            doc["summary"]["reliability"] = self.reliability_totals()
            doc["reliability"] = list(self.reliability)
        return doc

    def format_text(self) -> str:
        lines = [d.format_text() for d in self.diagnostics]
        if self.aborted:
            for r, msg in sorted(self.failures.items()):
                lines.append(f"rank {r} failed: {msg}")
        if self.reliability:
            totals = self.reliability_totals()
            interesting = {k: v for k, v in totals.items() if v}
            shown = ", ".join(
                f"{k}={v:.3g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in sorted(interesting.items())) or "all zero"
            lines.append(f"reliability: {shown}")
        lines.append(f"{len(self.diagnostics)} finding(s) over "
                     f"{self.nprocs} rank(s)"
                     + (" [job aborted]" if self.aborted else ""))
        return "\n".join(lines)
