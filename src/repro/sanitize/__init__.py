"""repro.sanitize — a MUST-style dynamic verifier for the simulated fabric.

Opt-in via ``repro.mpi.run(..., sanitize=True)`` or the
``repro-analyze sanitize`` CLI.  Checks performed on live traffic:

* happens-before buffer-access tracking (RPD400-RPD402),
* send/recv type-signature matching on the wire (RPD410, RPD411),
* request-leak and lost-message detection at job end (RPD420, RPD421),
* custom-datatype callback contract enforcement (RPD430-RPD432),
* distributed deadlock detection in bounded time (RPD440),
* dynamic lockset witnessing of RPD8xx static findings
  (:mod:`repro.sanitize.witness`, ``repro-analyze races --witness``).
"""

from ..errors import DeadlockError
from .buffers import BufferRecord, BufferTracker
from .job import JobSanitizer
from .report import SanitizeReport
from .witness import (LocksetWitness, WitnessConfirmation, WitnessReport,
                      run_shipped_witness)

__all__ = [
    "BufferRecord",
    "BufferTracker",
    "DeadlockError",
    "JobSanitizer",
    "LocksetWitness",
    "SanitizeReport",
    "WitnessConfirmation",
    "WitnessReport",
    "run_shipped_witness",
]
