"""The job-level sanitizer: one instance shared by every rank of a job.

Created by ``repro.mpi.run(..., sanitize=True)`` and attached to each
transport worker (``worker.sanitizer``).  The hooks interpose at four
levels:

* **engine** (``repro.mpi.engine``) — request registration, shadow buffer
  acquisition, signature attachment, custom-callback contract checks;
* **request** (``repro.mpi.requests``) — checksum verification and buffer
  release at wait time;
* **transport wait** (``repro.ucp.context``) — every blocking wait runs
  through :meth:`wait_event`, which maintains the cross-rank wait-for
  graph and converts cycles into diagnostics in bounded time;
* **delivery** (``Worker.deliver``) — wire-signature matching and
  truncation pre-checks at the tag matcher.

Thread model: diagnostics and the wait-for graph are locked (any rank may
touch them); per-rank request lists and buffer maps are only touched from
their own rank's thread.
"""

from __future__ import annotations

import os
import sys
import threading
import time
import traceback
from typing import Optional

from ..analyze.diagnostics import Diagnostic
from ..core.signature import format_signature, signature_compatible
from ..errors import DeadlockError
from ..ucp.constants import unpack_tag
from .buffers import BufferTracker
from .report import SanitizeReport

#: Mirrors repro.mpi.comm.MAX_USER_TAG (imported lazily to avoid a cycle
#: through repro.mpi.__init__ -> runtime -> this module).
_MAX_USER_TAG = 1 << 30

_REPRO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _user_site(limit: int = 30) -> str:
    """'file:line' of the innermost stack frame outside this package."""
    for fr in reversed(traceback.extract_stack(limit=limit)):
        fn = os.path.abspath(fr.filename)
        if not fn.startswith(_REPRO_ROOT) and "threading" not in fn:
            return f"{os.path.basename(fr.filename)}:{fr.lineno}"
    return ""


def _fmt_frames(frame, keep: int = 6) -> list[str]:
    """Render a rank's live stack, dropping sanitizer/threading noise."""
    out = []
    for fr in traceback.extract_stack(frame):
        fn = os.path.abspath(fr.filename)
        if fn.startswith(os.path.join(_REPRO_ROOT, "sanitize")):
            continue
        if "threading" in os.path.basename(fn):
            continue
        out.append(f"{os.path.basename(fr.filename)}:{fr.lineno} "
                   f"in {fr.name}")
    return out[-keep:]


class RequestRecord:
    """Sanitizer-side shadow of one nonblocking request."""

    __slots__ = ("job", "rank", "kind", "label", "site", "buffer",
                 "completed", "cancelled")

    def __init__(self, job: "JobSanitizer", rank: int, kind: str,
                 label: str):
        self.job = job
        self.rank = rank
        self.kind = kind
        self.label = label
        self.site = _user_site()
        self.buffer = None
        self.completed = False
        self.cancelled = False

    # Called by Request.wait on the owning thread.

    def before_wait(self) -> None:
        if not self.completed and self.kind == "recv" \
                and self.buffer is not None:
            self.job.buffers.verify_recv(self.buffer)

    def after_wait(self) -> None:
        if self.completed:
            return
        self.completed = True
        if self.buffer is not None:
            if self.kind == "send":
                self.job.buffers.verify_send(self.buffer)
            self.job.buffers.release(self.buffer)

    def mark_cancelled(self) -> None:
        """A successful MPI_Cancel: the operation never ran, so no data
        moved and no completion is owed — release the shadow buffer with
        no verification and exempt the request from the RPD420 sweep."""
        if self.completed:
            return
        self.completed = True
        self.cancelled = True
        if self.buffer is not None:
            self.job.buffers.release(self.buffer)


class WaitEdge:
    """One rank's current blocking dependency in the wait-for graph."""

    __slots__ = ("rank", "targets", "satisfied", "detail", "thread_id",
                 "vtime")

    def __init__(self, rank: int, targets, satisfied, detail: str,
                 vtime: float):
        self.rank = rank
        self.targets = frozenset(targets)
        #: Live predicate (e.g. ``event.is_set``): re-checked during cycle
        #: analysis so a message that lands mid-analysis clears the edge.
        self.satisfied = satisfied
        self.detail = detail
        self.thread_id = threading.get_ident()
        self.vtime = vtime


class JobSanitizer:
    """Dynamic verification state for one SPMD job."""

    #: Wall-clock granularity of sanitized blocking waits; also bounds the
    #: deadlock detection latency (a few intervals, not the job timeout).
    poll_interval = 0.02

    def __init__(self, nprocs: int):
        self.nprocs = nprocs
        self._lock = threading.Lock()
        self._diags: list[Diagnostic] = []
        self._dedup: set = set()
        self.buffers = BufferTracker(self)
        self._requests: dict[int, list[RequestRecord]] = {
            r: [] for r in range(nprocs)}
        self._edges: dict[int, WaitEdge] = {}
        self._finished: set[int] = set()
        self.abort = threading.Event()
        self._abort_reason = ""
        self._deadlock_reported = False

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def emit(self, code: str, message: str, rank: Optional[int] = None,
             hint: str = "", subject: str = "", dedup=None) -> None:
        with self._lock:
            if dedup is not None:
                if dedup in self._dedup:
                    return
                self._dedup.add(dedup)
            subj = subject or (f"rank {rank}" if rank is not None else "")
            self._diags.append(Diagnostic(code, message, hint=hint,
                                          subject=subj))

    def diagnostics(self) -> list[Diagnostic]:
        with self._lock:
            return list(self._diags)

    def report(self, aborted: bool = False, failures=None,
               program: Optional[str] = None) -> SanitizeReport:
        fail = {r: f"{type(e).__name__}: {e}"
                for r, e in (failures or {}).items()}
        return SanitizeReport(nprocs=self.nprocs,
                              diagnostics=self.diagnostics(),
                              aborted=aborted, failures=fail,
                              program=program)

    # ------------------------------------------------------------------
    # labels
    # ------------------------------------------------------------------

    @staticmethod
    def _fmt_tag(tag64: int) -> str:
        _, _, user = unpack_tag(tag64)
        if user >= _MAX_USER_TAG:
            return " (internal tag)"
        return f" (tag {user})"

    @staticmethod
    def _fmt_dtype(dtype, count: int) -> str:
        name = getattr(dtype, "shortname", None) or dtype.name
        return f"{count} x {name}"

    # ------------------------------------------------------------------
    # engine hooks (posting)
    # ------------------------------------------------------------------

    @staticmethod
    def _dtype_ranges(dtype, count: int):
        """Byte ranges a datatype's count elements touch in the buffer.

        Custom datatypes get an empty claim (inert record): their
        callbacks decide at pack/region time which bytes of the user
        object they touch, so any byte-level claim here would be a guess —
        e.g. halo codes legitimately post concurrent region ops against
        disjoint rows of one array.  Large block counts collapse to the
        overall span — cheaper, at the price of overlap precision.
        """
        if getattr(dtype, "is_custom", False):
            return []
        try:
            blocks = dtype.typemap.merged_blocks()
            ext = dtype.extent
        except Exception:
            return None
        if not blocks or count <= 0:
            return []
        if len(blocks) == 1 and blocks[0].offset == 0 \
                and blocks[0].length == ext:
            return [(0, count * ext)]
        if count * len(blocks) > 4096:
            lo = min(b.offset for b in blocks)
            hi = max(b.offset + b.length for b in blocks)
            return [(max(lo, 0), (count - 1) * ext + hi)]
        out = []
        for i in range(count):
            base = i * ext
            for b in blocks:
                if base + b.offset + b.length > 0:
                    out.append((base + b.offset, base + b.offset + b.length))
        return out

    def on_send_posted(self, rank: int, req, buf, dtype, count: int,
                       dest: int, tag64: int) -> None:
        label = (f"send of {self._fmt_dtype(dtype, count)} to rank "
                 f"{dest}{self._fmt_tag(tag64)}")
        rec = RequestRecord(self, rank, "send", label)
        rec.buffer = self.buffers.acquire(
            rank, buf, writer=False, label=label,
            ranges=self._dtype_ranges(dtype, count))
        self._requests[rank].append(rec)
        req._san_record = rec

    def on_recv_posted(self, rank: int, req, buf, dtype, count: int,
                       peers, tag64: int) -> None:
        frm = "any rank" if peers is None or len(peers) != 1 \
            else f"rank {next(iter(peers))}"
        label = (f"recv of {self._fmt_dtype(dtype, count)} from "
                 f"{frm}{self._fmt_tag(tag64)}")
        rec = RequestRecord(self, rank, "recv", label)
        rec.buffer = self.buffers.acquire(
            rank, buf, writer=True, label=label,
            ranges=self._dtype_ranges(dtype, count))
        self._requests[rank].append(rec)
        req._san_record = rec

    # ------------------------------------------------------------------
    # custom-datatype contract checks (live traffic)
    # ------------------------------------------------------------------

    def check_custom_lifecycle(self, rank: int, dtype) -> None:
        cb = dtype.callbacks
        if cb.state_fn is not None and cb.state_free_fn is None:
            self.emit(
                "RPD432",
                f"custom datatype {dtype.name!r} allocates per-operation "
                f"state (state_fn) but has no state_free_fn; every "
                f"transfer leaks its state",
                rank=rank, dedup=("RPD432", dtype.name, "leak"),
                hint="register a state_free_fn releasing what state_fn "
                     "allocates")
        elif cb.state_free_fn is not None and cb.state_fn is None:
            self.emit(
                "RPD432",
                f"custom datatype {dtype.name!r} has a state_free_fn but "
                f"no state_fn; the free callback only ever sees None",
                rank=rank, dedup=("RPD432", dtype.name, "orphan"),
                hint="register the matching state_fn or drop state_free_fn")

    def check_packed_promise(self, rank: int, source: int, dtype,
                             promised: int, actual: int) -> None:
        if promised >= 0 and promised != actual:
            self.emit(
                "RPD430",
                f"custom datatype {dtype.name!r}: rank {source} packed "
                f"{actual} bytes but this receiver's query callback "
                f"promises {promised}; sender and receiver disagree on "
                f"the packed size",
                rank=rank,
                hint="make query_fn return the exact byte count pack_fn "
                     "produces for the same buffer")

    def report_region_mismatch(self, rank: int, source: int, dtype,
                               exc: BaseException) -> None:
        self.emit(
            "RPD431",
            f"custom datatype {dtype.name!r}: region exchange from rank "
            f"{source} failed: {exc}",
            rank=rank,
            hint="region_count_fn/region_fn must describe the same "
                 "regions on both sides of the transfer")

    # ------------------------------------------------------------------
    # delivery hook (tag-match layer)
    # ------------------------------------------------------------------

    def on_deliver(self, rank: int, msg, data) -> None:
        hdr = msg.header
        tagstr = self._fmt_tag(hdr.tag)
        sent_sig = getattr(hdr, "signature", None)
        want_sig = getattr(data, "expected_signature", None)
        if sent_sig is not None and want_sig is not None:
            ok, reason = signature_compatible(sent_sig, want_sig)
            if not ok:
                self.emit(
                    "RPD410",
                    f"message from rank {hdr.source}{tagstr} has a "
                    f"mismatched type signature: {reason}",
                    rank=rank,
                    hint="send and receive must describe the same scalar "
                         "sequence (MPI type-matching rules)")
        cap = getattr(data, "total_bytes", -1)
        if cap is not None and cap >= 0 and hdr.total_bytes > cap:
            sent = (f" (sender signature [{format_signature(sent_sig)}])"
                    if sent_sig is not None else "")
            self.emit(
                "RPD411",
                f"message of {hdr.total_bytes} bytes from rank "
                f"{hdr.source}{tagstr} does not fit the {cap}-byte "
                f"receive{sent}",
                rank=rank,
                hint="post a receive with a count at least as large as "
                     "the incoming message")

    # ------------------------------------------------------------------
    # wait-for graph / deadlock detection
    # ------------------------------------------------------------------

    def wait_event(self, rank: int, event: threading.Event, targets,
                   detail: str, vtime: float,
                   timeout: Optional[float] = None) -> bool:
        """Sanitized replacement for ``event.wait(timeout)``.

        Registers a wait-for edge while blocked and runs deadlock
        detection every :attr:`poll_interval`.  Raises
        :class:`~repro.errors.DeadlockError` once a deadlock is proven
        (by this rank or any other).
        """
        if event.is_set():
            return True
        edge = WaitEdge(rank, targets, event.is_set, detail, vtime)
        with self._lock:
            self._edges[rank] = edge
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            while True:
                if event.wait(self.poll_interval):
                    return True
                if self.abort.is_set():
                    raise DeadlockError(
                        self._abort_reason
                        or "job aborted by the sanitizer")
                self._check_deadlock()
                if deadline is not None and time.monotonic() >= deadline:
                    return False
        finally:
            with self._lock:
                self._edges.pop(rank, None)

    def _check_deadlock(self) -> None:
        with self._lock:
            edges = dict(self._edges)
            finished = set(self._finished)
        stuck = {r: e for r, e in edges.items() if not e.satisfied()}
        # Fixpoint: a rank is only permanently stuck if *every* rank that
        # could satisfy it is itself stuck or already finished (a finished
        # rank will never send again).  A specific-source recv has one
        # target (AND); an ANY_SOURCE recv lists all peers (OR).
        changed = True
        while changed and stuck:
            changed = False
            for r in list(stuck):
                hopeless = stuck.keys() | finished
                if any(t not in hopeless for t in stuck[r].targets):
                    del stuck[r]
                    changed = True
        if not stuck:
            return
        # Events may have fired while we analyzed; a satisfied edge means
        # the picture above was transient, not a deadlock.
        if any(e.satisfied() for e in stuck.values()):
            return
        with self._lock:
            if self._deadlock_reported:
                self.abort.set()
                return
            self._deadlock_reported = True
        message = self._deadlock_message(stuck, finished)
        self.emit("RPD440", message,
                  subject="ranks " + ",".join(str(r) for r in sorted(stuck)),
                  hint="break the cycle: reorder send/recv, use sendrecv, "
                       "or nonblocking operations completed together")
        self._abort_reason = ("distributed deadlock detected (RPD440): "
                             + message.splitlines()[1].strip()
                             if "\n" in message else message)
        self.abort.set()

    def _deadlock_message(self, stuck: dict, finished: set) -> str:
        frames = sys._current_frames()
        lines = [f"{len(stuck)} rank(s) permanently blocked:"]
        cycle = self._find_cycle(stuck)
        if cycle:
            lines.append("wait-for cycle: "
                         + " -> ".join(f"rank {r}" for r in cycle))
        elif finished:
            lines.append("waiting on rank(s) that already finished: "
                         + ",".join(str(r) for r in sorted(finished)))
        for r in sorted(stuck):
            e = stuck[r]
            lines.append(f"rank {r}: {e.detail} "
                         f"[blocked at virtual t={e.vtime:.3e}s]")
            frame = frames.get(e.thread_id)
            if frame is not None:
                for entry in _fmt_frames(frame):
                    lines.append(f"    {entry}")
        return "\n  ".join(lines)

    @staticmethod
    def _find_cycle(stuck: dict) -> Optional[list]:
        """Follow stuck->stuck targets from the lowest rank; return the
        closed walk when one exists (always, for a pure cycle)."""
        start = min(stuck)
        seen: dict[int, int] = {}
        path: list[int] = []
        r = start
        while r in stuck and r not in seen:
            seen[r] = len(path)
            path.append(r)
            nxt = sorted(t for t in stuck[r].targets if t in stuck)
            if not nxt:
                return None
            r = nxt[0]
        if r in seen:
            return path[seen[r]:] + [r]
        return None

    # ------------------------------------------------------------------
    # job lifecycle
    # ------------------------------------------------------------------

    def finalize_rank(self, rank: int) -> None:
        """Leak checks after a rank's function returned normally."""
        for rec in self._requests[rank]:
            if not rec.completed:
                where = f" (posted at {rec.site})" if rec.site else ""
                self.emit(
                    "RPD420",
                    f"{rec.label} was never completed before rank {rank} "
                    f"finished{where}",
                    rank=rank,
                    hint="wait()/waitall() every nonblocking request; an "
                         "unwaited request may not have moved its data")
        with self._lock:
            self._finished.add(rank)
        self.buffers.drop_rank(rank)

    def rank_failed(self, rank: int) -> None:
        """A rank raised; mark it finished without leak noise."""
        with self._lock:
            self._finished.add(rank)
        self.buffers.drop_rank(rank)

    def finalize_job(self, fabric) -> None:
        """Fabric-wide checks after every rank finished cleanly."""
        for worker in fabric.workers:
            for msg in worker.matcher.unmatched_messages():
                hdr = msg.header
                self.emit(
                    "RPD421",
                    f"message of {hdr.total_bytes} bytes from rank "
                    f"{hdr.source}{self._fmt_tag(hdr.tag)} was still "
                    f"queued unreceived at rank {worker.index} when the "
                    f"job ended",
                    rank=worker.index,
                    hint="every send needs a matching receive (or the "
                         "data is silently lost)")
