"""Shadow buffer-ownership tracking (the happens-before checker).

MPI forbids touching a buffer between posting a nonblocking operation and
completing it.  The tracker records, per rank, which byte ranges are owned
by in-flight requests:

* at post time an *acquire* checks the new ranges against every live
  record (an overlap involving a writer is RPD400) and checksums the
  owned bytes;
* at wait time the checksum is recomputed — a changed send buffer is
  RPD401, a receive buffer changed before delivery is RPD402;
* completion releases the ranges.

Ownership is **block-accurate**: a derived datatype owns only the bytes
its typemap touches, so concurrent operations on interleaved columns of
one array (the ddtbench halo pattern) neither collide nor perturb each
other's checksums.  All calls for one rank happen on that rank's own
thread, so the per-rank state needs no locking.  Buffers that expose no
byte view (custom-datatype objects) are tracked by identity only: overlap
is same-object, and no checksum is taken.
"""

from __future__ import annotations

import zlib
from typing import Any, Optional

import numpy as np


def _u8_or_none(buf: Any) -> Optional[np.ndarray]:
    """Flat uint8 view of a buffer, or None when it has no byte layout."""
    try:
        if isinstance(buf, np.ndarray):
            if not buf.flags.c_contiguous:
                return None
            return buf.view(np.uint8).reshape(-1)
        mv = memoryview(buf)
        if not mv.contiguous:
            return None
        return np.frombuffer(mv, dtype=np.uint8)
    except (TypeError, ValueError):
        return None


def _merge(ranges: list) -> list:
    """Coalesce a sorted list of [start, end) pairs."""
    out: list = []
    for s, e in ranges:
        if out and s <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], e))
        else:
            out.append((s, e))
    return out


class BufferRecord:
    """One in-flight request's claim on (parts of) a buffer.

    ``ranges`` are [start, end) byte offsets into the buffer's flat view —
    the bytes the operation's datatype actually touches.  None claims the
    whole view.
    """

    __slots__ = ("rank", "writer", "label", "view", "ranges", "abs_ranges",
                 "obj_id", "crc")

    def __init__(self, rank: int, buf: Any, writer: bool, label: str,
                 ranges: Optional[list] = None):
        self.rank = rank
        self.writer = writer
        self.label = label
        view = _u8_or_none(buf)
        self.view = view
        self.obj_id = None
        if view is None:
            # No byte layout: identity tracking, no checksum.
            self.ranges = []
            self.abs_ranges = []
            self.obj_id = id(buf)
            self.crc = None
            return
        n = view.shape[0]
        if ranges is None:
            rel = [(0, n)] if n else []
        else:
            rel = []
            for s, e in ranges:
                s, e = max(int(s), 0), min(int(e), n)
                if s < e:
                    rel.append((s, e))
            rel = _merge(sorted(rel))
        self.ranges = rel
        if rel:
            base = view.__array_interface__["data"][0]
            self.abs_ranges = [(base + s, base + e) for s, e in rel]
            self.crc = self._crc()
        else:
            # Zero bytes claimed: inert record (never overlaps or changes).
            self.abs_ranges = []
            self.crc = None

    def _crc(self) -> int:
        c = 0
        for s, e in self.ranges:
            c = zlib.crc32(self.view[s:e], c)
        return c

    def overlaps(self, other: "BufferRecord") -> bool:
        if self.obj_id is not None or other.obj_id is not None:
            return self.obj_id is not None and self.obj_id == other.obj_id
        a, b = self.abs_ranges, other.abs_ranges
        i = j = 0
        while i < len(a) and j < len(b):
            if a[i][0] < b[j][1] and b[j][0] < a[i][1]:
                return True
            if a[i][1] <= b[j][1]:
                i += 1
            else:
                j += 1
        return False

    def changed(self) -> bool:
        """Recompute the checksum; True when owned bytes moved underneath."""
        if self.crc is None:
            return False
        return self._crc() != self.crc


class BufferTracker:
    """Per-rank shadow ownership map, reporting through the job sanitizer."""

    def __init__(self, job):
        self._job = job
        self._active: dict[int, list[BufferRecord]] = {}

    def acquire(self, rank: int, buf: Any, writer: bool, label: str,
                ranges: Optional[list] = None) -> BufferRecord:
        rec = BufferRecord(rank, buf, writer, label, ranges=ranges)
        live = self._active.setdefault(rank, [])
        for other in live:
            if (rec.writer or other.writer) and rec.overlaps(other):
                self._job.emit(
                    "RPD400",
                    f"{label} overlaps the buffer of an incomplete "
                    f"{other.label}; concurrent requests may not share "
                    f"bytes when either writes",
                    rank=rank,
                    hint="complete the earlier request (wait) before "
                         "posting an operation on an overlapping buffer")
                break
        live.append(rec)
        return rec

    def verify_send(self, rec: BufferRecord) -> None:
        if rec.changed():
            self._job.emit(
                "RPD401",
                f"send buffer of {rec.label} was modified while the send "
                f"was in flight; the receiver may observe the new bytes "
                f"(rendezvous) or the old ones (eager)",
                rank=rec.rank,
                hint="wait on the send request before reusing its buffer")

    def verify_recv(self, rec: BufferRecord) -> None:
        if rec.changed():
            self._job.emit(
                "RPD402",
                f"receive buffer of {rec.label} was modified between the "
                f"post and delivery; incoming data will overwrite those "
                f"writes",
                rank=rec.rank,
                hint="do not touch a receive buffer until the request "
                     "completes")
        # Delivery rewrites the bytes legitimately from here on.
        rec.crc = None

    def release(self, rec: BufferRecord) -> None:
        live = self._active.get(rec.rank)
        if live is not None:
            try:
                live.remove(rec)
            except ValueError:
                pass

    def drop_rank(self, rank: int) -> None:
        """Forget a finished rank's records (leaks are reported per request)."""
        self._active.pop(rank, None)
